// Abstract base of all matrix storage.
//
// Concrete leaves: mem_store (RAM, chunked per partition), em_store (SAFS
// file on the simulated SSD array), generated_store (elements computed on
// demand from a counter-based RNG or pattern). The DAG adds virtual_store
// (core/virtual_store.h), which represents un-materialized computation.
//
// Data layout contract: within each I/O partition, elements are column-major
// with column stride equal to the number of rows in that partition. All
// views handed to kernels carry their stride explicitly.
#pragma once

#include <cstddef>
#include <memory>

#include "common/types.h"
#include "matrix/partition.h"

namespace flashr {

enum class store_kind : int { mem = 0, ext = 1, generated = 2, virt = 3 };

class matrix_store : public std::enable_shared_from_this<matrix_store> {
 public:
  using ptr = std::shared_ptr<matrix_store>;
  using const_ptr = std::shared_ptr<const matrix_store>;

  matrix_store(part_geom geom, scalar_type type)
      : geom_(geom), type_(type) {}
  virtual ~matrix_store() = default;
  matrix_store(const matrix_store&) = delete;
  matrix_store& operator=(const matrix_store&) = delete;

  std::size_t nrow() const { return geom_.nrow; }
  std::size_t ncol() const { return geom_.ncol; }
  scalar_type type() const { return type_; }
  std::size_t elem_size() const { return type_size(type_); }
  const part_geom& geom() const { return geom_; }
  std::size_t num_parts() const { return geom_.num_parts(); }

  virtual store_kind kind() const = 0;
  bool is_virtual() const { return kind() == store_kind::virt; }

 protected:
  part_geom geom_;
  scalar_type type_;
};

}  // namespace flashr
