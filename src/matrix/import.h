// Data import/export (Table 3: load.dense reads a dense matrix from text
// files) and persistence of external-memory matrices.
//
// Text import streams the file partition by partition, so a CSV larger than
// memory loads directly onto the SSD store. Binary save/load make an EM
// matrix durable across processes: the matrix data already lives in a SAFS
// file; save() writes a small metadata header next to a stable copy of the
// stripes and load() reattaches it.
#pragma once

#include <string>

#include "core/dense_matrix.h"

namespace flashr {

struct load_options {
  char delimiter = ',';
  bool header = false;          ///< skip the first line
  storage st = storage::in_mem; ///< where the loaded matrix lives
  scalar_type type = scalar_type::f64;
};

/// load.dense: parse a delimited text file of numeric rows into a tall
/// matrix. Rows must all have the same number of fields. Streams the input:
/// memory use is one I/O partition regardless of file size.
dense_matrix load_dense(const std::string& path,
                        const load_options& opts = {});

/// Write a matrix as delimited text (one row per line).
void save_dense_text(const dense_matrix& m, const std::string& path,
                     char delimiter = ',');

/// Persist a matrix into `dir` as <name>.meta + <name>.data (binary,
/// partition-packed). Works for any storage; the matrix is materialized
/// first.
void save_matrix(const dense_matrix& m, const std::string& dir,
                 const std::string& name);

/// Reattach a matrix saved with save_matrix. `st` chooses where it lands.
dense_matrix load_matrix(const std::string& dir, const std::string& name,
                         storage st = storage::in_mem);

}  // namespace flashr
