#include "matrix/datasets.h"

#include "common/rng.h"

namespace flashr {

labeled_data criteo_like(std::size_t n, std::uint64_t seed) {
  const std::size_t num_numeric = 13;
  const std::size_t num_cat = 26;
  const std::size_t p = num_numeric + num_cat;

  // Heavy-tailed numeric features: exp(N(0,1)) - 1, clipped into a plausible
  // counter range; categorical hashes: uniform integers in [0, 32).
  std::vector<dense_matrix> cols;
  cols.reserve(2);
  dense_matrix numeric =
      pmin(exp(dense_matrix::rnorm(n, num_numeric, 0.0, 1.0, seed)) - 1.0,
           50.0);
  dense_matrix cats = sapply(
      dense_matrix::runif(n, num_cat, 0.0, 32.0, seed ^ 0x9e3779b9ULL),
      uop_id::floor_v);
  dense_matrix X = cbind({numeric, cats});

  // Planted logistic model: a fixed sparse-ish weight vector with decaying
  // magnitudes and alternating signs.
  smat w(p, 1);
  rng64 rng(seed ^ 0x1234567ULL);
  for (std::size_t j = 0; j < p; ++j)
    w(j, 0) = (j % 3 == 0 ? 0.2 : -0.08) / (1.0 + 0.2 * static_cast<double>(j));
  dense_matrix logits = matmul(X, dense_matrix::from_smat(w)) - 0.8;
  dense_matrix u = dense_matrix::runif(n, 1, 0.0, 1.0, seed ^ 0xabcdefULL);
  dense_matrix y = lt(u, sigmoid(logits));
  return labeled_data{X, y};
}

labeled_data pagegraph_like(std::size_t n, std::size_t clusters,
                            std::uint64_t seed) {
  const std::size_t p = 32;
  // Column scales decay like singular values of a scale-free graph.
  smat mix(p, p);
  rng64 rng(seed);
  for (std::size_t j = 0; j < p; ++j) {
    const double scale = 1.0 / std::sqrt(1.0 + static_cast<double>(j));
    for (std::size_t i = 0; i < p; ++i)
      mix(i, j) = scale * (i == j ? 1.0 : 0.15 * rng.next_normal());
  }
  dense_matrix Z = dense_matrix::rnorm(n, p, 0.0, 1.0, seed ^ 0x55aaULL);
  dense_matrix X = matmul(Z, dense_matrix::from_smat(mix));

  if (clusters == 0) return labeled_data{X, dense_matrix{}};

  // Plant a mixture: shift each row by a cluster centroid selected from the
  // row index hash (labels are reproducible and partition-independent).
  smat centroids(p, clusters);
  for (std::size_t c = 0; c < clusters; ++c)
    for (std::size_t j = 0; j < p; ++j)
      centroids(j, c) = 2.5 * rng.next_normal() / std::sqrt(1.0 + static_cast<double>(j));
  dense_matrix labf =
      sapply(dense_matrix::runif(n, 1, 0.0, static_cast<double>(clusters),
                                 seed ^ 0x77eeULL),
             uop_id::floor_v);
  dense_matrix lab = labf.cast(scalar_type::i64);
  // One-hot via comparisons, then matmul with centroid matrix transpose.
  std::vector<dense_matrix> shift_cols;
  shift_cols.reserve(clusters);
  // shift = onehot(lab) %*% t(centroids): build as sum over clusters of
  // indicator * centroid — cheaper: indicator matrix n x clusters.
  std::vector<dense_matrix> indicators;
  for (std::size_t c = 0; c < clusters; ++c)
    indicators.push_back(
        mapply2(labf, static_cast<double>(c), bop_id::eq));
  dense_matrix onehot = cbind(indicators);
  dense_matrix shift =
      matmul(onehot, dense_matrix::from_smat(centroids.t()));
  return labeled_data{X + shift, lab};
}

}  // namespace flashr
