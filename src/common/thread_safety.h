// Clang thread-safety ("capability") annotations, annotated lock types, and
// the engine-wide lock-rank hierarchy.
//
// The engine's cross-thread protocols — the thread_pool job handshake, the
// buffer_pool free lists, the async_io request queue, cum-carry chains and
// pass-cancellation state in core/exec — are documented as capability
// annotations on the data they protect. Under clang, `-Wthread-safety`
// (cmake -DFLASHR_THREAD_SAFETY=ON) turns those contracts into compile
// errors: accessing a GUARDED_BY member without its mutex, or calling a
// REQUIRES function unlocked, fails the build. Under GCC every macro
// expands to nothing and the wrapper types behave exactly like their
// std counterparts.
//
// Conventions for annotated code:
//  * protect shared members with flashr::mutex (never a bare std::mutex
//    member — the analysis cannot see through an unannotated type; the
//    project linter enforces this in engine modules);
//  * take locks with flashr::mutex_lock (scoped) and write condition waits
//    as explicit `while (!pred) cv.wait(lock);` loops — predicate lambdas
//    are analyzed as separate functions and would lose the lock context;
//  * split a public locking entry point from its lock-held core by giving
//    the core a `*_locked()` name and a REQUIRES(mutex) annotation.
//
// Lock ranks. Every flashr::mutex in src/ declares a rank from the
// lock_rank table below via LOCK_RANK(name), and a thread may only acquire
// a mutex whose rank is STRICTLY GREATER than every rank it already holds.
// That single rule makes the lock graph acyclic, so no two threads can
// deadlock on flashr mutexes. The discipline is enforced twice:
//  * statically, by tools/analyze_flashr.py, which propagates held-lock
//    sets through the whole-program call graph and reports any acquisition
//    path that violates the order (with the full call chain); and
//  * dynamically, by a thread-local rank stack inside flashr::mutex that
//    aborts on inversion whenever invariants are enabled
//    (-DFLASHR_CHECK_INVARIANTS=ON, or flashr::invariant_scope in tests).
//
// Rank values are spaced so new locks can slot in without renumbering.
// Outer, coarse locks (taken first, held longest) get LOW ranks; leaf
// locks that may be taken from deep inside the engine get HIGH ranks.
// A rank marked nonblocking_safe covers a mutex whose every critical
// section is O(1) and alloc/IO-free, so taking it from an async-I/O
// completion context does not stall the I/O thread.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/check.h"

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define FLASHR_TSA(x) __attribute__((x))
#endif
#endif
#ifndef FLASHR_TSA
#define FLASHR_TSA(x)  // no-op outside clang
#endif

/// Type-level: the annotated class is a capability (a mutex-like thing).
#define CAPABILITY(x) FLASHR_TSA(capability(x))
/// Type-level: RAII object that holds a capability for its lifetime.
#define SCOPED_CAPABILITY FLASHR_TSA(scoped_lockable)

/// Data members readable/writable only while holding the capability.
#define GUARDED_BY(x) FLASHR_TSA(guarded_by(x))
/// Pointer members whose *pointee* is protected by the capability.
#define PT_GUARDED_BY(x) FLASHR_TSA(pt_guarded_by(x))

/// Function-level: acquires/releases the capability (mutex methods, scoped
/// lock constructors/destructors).
#define ACQUIRE(...) FLASHR_TSA(acquire_capability(__VA_ARGS__))
#define RELEASE(...) FLASHR_TSA(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) FLASHR_TSA(try_acquire_capability(__VA_ARGS__))

/// Function-level: caller must hold / must NOT hold the capability.
#define REQUIRES(...) FLASHR_TSA(requires_capability(__VA_ARGS__))
#define EXCLUDES(...) FLASHR_TSA(locks_excluded(__VA_ARGS__))

/// Function-level: returns a reference to the named capability.
#define RETURN_CAPABILITY(x) FLASHR_TSA(lock_returned(x))
/// Function-level: asserts (at runtime) that the capability is held.
#define ASSERT_CAPABILITY(x) FLASHR_TSA(assert_capability(x))
/// Escape hatch for code the analysis cannot model. Use sparingly and say
/// why in a comment.
#define NO_THREAD_SAFETY_ANALYSIS FLASHR_TSA(no_thread_safety_analysis)

/// Generic clang `annotate` attribute carrier; tools/analyze_flashr.py keys
/// on these strings when walking clang JSON ASTs. Expands to nothing under
/// GCC (which only warns on unknown attributes, but noise is noise).
#if defined(__clang__)
#define FLASHR_ANNOTATE(s) __attribute__((annotate(s)))
#else
#define FLASHR_ANNOTATE(s)
#endif

/// Marks a function as a nonblocking context: async-I/O completion
/// callbacks, trace-ring record paths, watchdog poll bodies. The analyzer
/// verifies nothing reachable from it blocks: no lock of a mutex whose rank
/// is not nonblocking_safe, no condition-variable wait, no direct heap
/// allocation, no file I/O, no logging. Calling another FLASHR_NONBLOCKING
/// function is fine (it is verified on its own).
#define FLASHR_NONBLOCKING FLASHR_ANNOTATE("flashr_nonblocking")

/// Escape hatch for the nonblocking analysis: the annotated function is
/// treated as nonblocking without descending into it. Use only with a
/// comment explaining why its slow path cannot bite (e.g. once-per-thread
/// setup that nonblocking threads perform before entering the context).
#define FLASHR_BLOCKING_EXEMPT(why) \
  FLASHR_ANNOTATE("flashr_blocking_exempt:" why)

/// Marks a function as async-signal-safe: it may run inside the crash
/// handler (obs/crash_handler.cpp) after SIGSEGV/SIGBUS/SIGABRT/SIGFPE,
/// where the interrupted thread may hold ANY lock (including malloc's).
/// The analyzer verifies nothing reachable from it takes a mutex of any
/// rank (nonblocking_safe does not help — the crashed thread may hold that
/// very mutex), allocates, or calls blocking library I/O other than the
/// raw write/fsync/close family. Strictly stronger than FLASHR_NONBLOCKING.
#define FLASHR_SIGNAL_SAFE FLASHR_ANNOTATE("flashr_signal_safe")

namespace flashr {

namespace lock_rank {

/// A named rank in the global lock order. Passed by reference into
/// flashr::mutex so the runtime checker can report names, and parsed out of
/// this header by tools/analyze_flashr.py — this table is the single source
/// of truth for both enforcers.
struct rank_t {
  int value;                    ///< position in the global order
  const char* name;             ///< for diagnostics; matches the identifier
  bool nonblocking_safe;        ///< O(1), alloc/IO-free critical sections
};

// The engine lock-rank table, in acquisition order (low = outermost).
// Derived from the actual nesting edges in the tree; see DESIGN.md §12 for
// the per-edge justification. Keep sorted by value; values are unique.
inline constexpr rank_t watchdog{200, "watchdog", false};
inline constexpr rank_t governor{300, "governor", false};
inline constexpr rank_t pass_error{400, "pass_error", false};
inline constexpr rank_t pass_acc{410, "pass_acc", false};
inline constexpr rank_t cum_chain{420, "cum_chain", false};
inline constexpr rank_t pass_stats{430, "pass_stats", false};
inline constexpr rank_t profile{440, "profile", false};
inline constexpr rank_t virtual_result{460, "virtual_result", false};
inline constexpr rank_t thread_pool{470, "thread_pool", false};
inline constexpr rank_t prefetch_window{500, "prefetch_window", true};
inline constexpr rank_t io_join{550, "io_join", true};
// Write-behind budget accounting shared by every I/O backend
// (io/io_backend.h). Completions release budget from nonblocking contexts
// (the uring reaper, pool I/O threads between requests), so the critical
// sections are O(1) and alloc-free.
inline constexpr rank_t io_write_budget{580, "io_write_budget", true};
// Fault-injection plan snapshot (io/fault.h). A leaf in practice — the
// injector takes nothing under it — but ranked above prefetch_window
// because backends evaluate the injection schedule at submit time, and
// submission may run under the prefetch window (refill staging reads).
inline constexpr rank_t fault_plan{590, "fault_plan", false};
inline constexpr rank_t async_queue{600, "async_queue", false};
// The uring completion-dispatch pool's task queue (io/uring_io.cpp). A
// leaf in practice: the reaper enqueues and workers dequeue with nothing
// else held, and a worker drops it before running the task (which may take
// prefetch_window-ranked locks via notify callbacks, or uring_ring via a
// resubmission).
inline constexpr rank_t uring_dispatch{605, "uring_dispatch", false};
// io_uring submission state (staged SQE count, kernel-inflight count,
// pending-op queue) in io/uring_io.cpp. Taken under the prefetch window
// (refill stages reads) and by the reaper/dispatchers for resubmissions;
// never held across completion dispatch, which re-enters
// prefetch_window-ranked locks.
inline constexpr rank_t uring_ring{610, "uring_ring", false};
inline constexpr rank_t buffer_pool{650, "buffer_pool", true};
inline constexpr rank_t metrics_registry{700, "metrics_registry", false};
inline constexpr rank_t trace_registry{750, "trace_registry", false};
// Profile-history store bookkeeping (obs/prof_store.cpp): armed directory
// and retention count. Held across record composition, which drains the
// sampler's aggregates — so it must rank BELOW sampler.
inline constexpr rank_t prof_store{760, "prof_store", false};
// Sampling-profiler collector state (obs/sampler.cpp): thread registry,
// folded aggregates, symbol cache. Acquired by thread attach/detach (may
// run under trace_registry from set_thread_name), the collector's drain
// tick, and export paths that hold nothing else; the SIGPROF handler
// itself never touches it (per-thread rings are lock-free SPSC).
inline constexpr rank_t sampler{770, "sampler", false};
// Innermost: conf() lazily runs config init, which may start/stop the HTTP
// stats server — so the server's own lock can be acquired under whatever
// the first conf() caller happens to hold (pass accumulators, the prefetch
// window, the profiler). It protects only the server's listener state and
// is never held across another ranked acquisition.
inline constexpr rank_t stats_server{800, "stats_server", false};
// Innermost, same reasoning as stats_server: conf() lazy init may arm the
// incident monitor, so this lock is acquired under whatever the first
// conf() caller holds. It guards only arm/disarm bookkeeping (bundle dir,
// monitor thread handle, trigger-pipe fd) for a few copies/stores and is
// never held across a ranked acquisition — the monitor thread composes
// bundles (governor health, io-backend snapshots, metrics, profile
// history) with NO lock held, from copies it took at arm time. Trigger
// requests themselves are lock-free (atomic slot + self-pipe) precisely
// because they fire from under governor/watchdog locks and from the
// crash handler.
inline constexpr rank_t incident{900, "incident", false};

}  // namespace lock_rank

/// Declares the rank of a flashr::mutex at its declaration site:
///   mutable mutex pool_mtx_ LOCK_RANK(buffer_pool);
/// The rank rides in the mutex's constructor argument, which both the
/// runtime checker and the analyzer's AST frontend read back; whether the
/// rank is nonblocking-safe is a property of the rank table entry, not of
/// the declaration.
#define LOCK_RANK(name) {::flashr::lock_rank::name}

struct raw_sink;  // common/raw_sink.h — buffered fd writer for crash dumps

namespace detail {
/// Runtime lock-rank checker (src/common/lock_rank.cpp). Thread-local rank
/// stack; check aborts via assert_fail when `r` is not strictly greater
/// than every held rank. All three are no-ops unless invariants are on
/// (note/forget keep the stack consistent across gate flips).
void rank_check(const void* m, const lock_rank::rank_t& r);
void rank_note(const void* m, const lock_rank::rank_t& r);
void rank_forget(const void* m) noexcept;
/// Test/introspection hook: ranks currently held by this thread, in
/// acquisition order, written into out[0..max); returns the held count.
int held_ranks(int* out, int max) noexcept;

/// One thread's held-rank stack as seen from another thread. Populated only
/// while invariants are enabled (the rank stack is maintained under the
/// same gate as the checker); `depth` may exceed the array when clamped.
struct thread_ranks {
  unsigned tid;        ///< OS thread id (gettid)
  int depth;           ///< held count (clamped to kMaxHeldRanks entries)
  int values[16];      ///< rank values, acquisition order
  const char* names[16];  ///< rank names from the table (static storage)
};

/// Snapshot every live thread's held-rank stack into out[0..max); returns
/// the number written. Lock-free (relaxed atomics over a fixed registry);
/// concurrent lock/unlock may yield a momentarily inconsistent stack for a
/// thread, which is acceptable for diagnostics.
int held_ranks_all_threads(thread_ranks* out, int max) noexcept;

/// Crash-path dump of the same registry as a RANK section (raw binary, see
/// obs/crash_handler.h for framing). Async-signal-safe.
void rank_dump_raw(raw_sink& sink) noexcept FLASHR_SIGNAL_SAFE;
}  // namespace detail

/// std::mutex with the capability attribute the analysis needs. Satisfies
/// Lockable, so std::lock_guard/std::unique_lock still work where the
/// analysis is not wanted (e.g. function-local statics).
///
/// A rank-constructed mutex participates in the runtime lock-rank check
/// whenever invariants are enabled; a default-constructed one (rank 0,
/// test scaffolding only — the analyzer flags unranked mutexes in src/)
/// skips it.
class CAPABILITY("mutex") mutex {
 public:
  mutex() = default;
  explicit mutex(const lock_rank::rank_t& r) : rank_(&r) {}
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() ACQUIRE() {
    // Check before blocking on the lock: a true inversion may deadlock
    // right here, and the abort must win that race.
    if (rank_ && invariants_enabled()) detail::rank_check(this, *rank_);
    m_.lock();
    if (rank_ && invariants_enabled()) detail::rank_note(this, *rank_);
  }
  void unlock() RELEASE() {
    if (rank_) detail::rank_forget(this);  // no-op if never noted
    m_.unlock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (!m_.try_lock()) return false;
    if (rank_ && invariants_enabled()) {
      // A failed try_lock is always safe; a successful out-of-order one is
      // the same latent deadlock as lock() and aborts the same way.
      detail::rank_check(this, *rank_);
      detail::rank_note(this, *rank_);
    }
    return true;
  }

  /// Declared rank value (0 when unranked); for tests and diagnostics.
  int rank() const noexcept { return rank_ ? rank_->value : 0; }

 private:
  std::mutex m_;
  const lock_rank::rank_t* rank_ = nullptr;
};

/// Scoped lock over flashr::mutex. Exposes lock()/unlock() (BasicLockable)
/// so it can be handed to cond_var::wait, which releases and re-acquires.
class SCOPED_CAPABILITY mutex_lock {
 public:
  explicit mutex_lock(mutex& m) ACQUIRE(m) : m_(m) { m_.lock(); }
  ~mutex_lock() RELEASE() { m_.unlock(); }
  mutex_lock(const mutex_lock&) = delete;
  mutex_lock& operator=(const mutex_lock&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }

 private:
  mutex& m_;
};

/// Condition variable usable with flashr::mutex_lock. condition_variable_any
/// works with any BasicLockable; the tiny overhead over std::condition_variable
/// is irrelevant next to the job/IO granularity it is used at.
using cond_var = std::condition_variable_any;

}  // namespace flashr
