// Clang thread-safety ("capability") annotations and annotated lock types.
//
// The engine's cross-thread protocols — the thread_pool job handshake, the
// buffer_pool free lists, the async_io request queue, cum-carry chains and
// pass-cancellation state in core/exec — are documented as capability
// annotations on the data they protect. Under clang, `-Wthread-safety`
// (cmake -DFLASHR_THREAD_SAFETY=ON) turns those contracts into compile
// errors: accessing a GUARDED_BY member without its mutex, or calling a
// REQUIRES function unlocked, fails the build. Under GCC every macro
// expands to nothing and the wrapper types behave exactly like their
// std counterparts.
//
// Conventions for annotated code:
//  * protect shared members with flashr::mutex (never a bare std::mutex
//    member — the analysis cannot see through an unannotated type; the
//    project linter enforces this in engine modules);
//  * take locks with flashr::mutex_lock (scoped) and write condition waits
//    as explicit `while (!pred) cv.wait(lock);` loops — predicate lambdas
//    are analyzed as separate functions and would lose the lock context;
//  * split a public locking entry point from its lock-held core by giving
//    the core a `*_locked()` name and a REQUIRES(mutex) annotation.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define FLASHR_TSA(x) __attribute__((x))
#endif
#endif
#ifndef FLASHR_TSA
#define FLASHR_TSA(x)  // no-op outside clang
#endif

/// Type-level: the annotated class is a capability (a mutex-like thing).
#define CAPABILITY(x) FLASHR_TSA(capability(x))
/// Type-level: RAII object that holds a capability for its lifetime.
#define SCOPED_CAPABILITY FLASHR_TSA(scoped_lockable)

/// Data members readable/writable only while holding the capability.
#define GUARDED_BY(x) FLASHR_TSA(guarded_by(x))
/// Pointer members whose *pointee* is protected by the capability.
#define PT_GUARDED_BY(x) FLASHR_TSA(pt_guarded_by(x))

/// Function-level: acquires/releases the capability (mutex methods, scoped
/// lock constructors/destructors).
#define ACQUIRE(...) FLASHR_TSA(acquire_capability(__VA_ARGS__))
#define RELEASE(...) FLASHR_TSA(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) FLASHR_TSA(try_acquire_capability(__VA_ARGS__))

/// Function-level: caller must hold / must NOT hold the capability.
#define REQUIRES(...) FLASHR_TSA(requires_capability(__VA_ARGS__))
#define EXCLUDES(...) FLASHR_TSA(locks_excluded(__VA_ARGS__))

/// Function-level: returns a reference to the named capability.
#define RETURN_CAPABILITY(x) FLASHR_TSA(lock_returned(x))
/// Function-level: asserts (at runtime) that the capability is held.
#define ASSERT_CAPABILITY(x) FLASHR_TSA(assert_capability(x))
/// Escape hatch for code the analysis cannot model. Use sparingly and say
/// why in a comment.
#define NO_THREAD_SAFETY_ANALYSIS FLASHR_TSA(no_thread_safety_analysis)

namespace flashr {

/// std::mutex with the capability attribute the analysis needs. Satisfies
/// Lockable, so std::lock_guard/std::unique_lock still work where the
/// analysis is not wanted (e.g. function-local statics).
class CAPABILITY("mutex") mutex {
 public:
  mutex() = default;
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// Scoped lock over flashr::mutex. Exposes lock()/unlock() (BasicLockable)
/// so it can be handed to cond_var::wait, which releases and re-acquires.
class SCOPED_CAPABILITY mutex_lock {
 public:
  explicit mutex_lock(mutex& m) ACQUIRE(m) : m_(m) { m_.lock(); }
  ~mutex_lock() RELEASE() { m_.unlock(); }
  mutex_lock(const mutex_lock&) = delete;
  mutex_lock& operator=(const mutex_lock&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }

 private:
  mutex& m_;
};

/// Condition variable usable with flashr::mutex_lock. condition_variable_any
/// works with any BasicLockable; the tiny overhead over std::condition_variable
/// is irrelevant next to the job/IO granularity it is used at.
using cond_var = std::condition_variable_any;

}  // namespace flashr
