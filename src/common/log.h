// Minimal leveled logger. Quiet by default; benchmarks and examples raise the
// level to info to narrate progress. Thread-safe via a single mutex — logging
// is never on a hot path.
//
// Output is pluggable: the default sink printf-formats to stderr; a custom
// sink (set_log_sink) receives every formatted message, and
// set_log_format(log_format::json) switches the default sink to one JSON
// object per line ({"ts_ns":..., "level":"warn", "msg":"..."}), for log
// collectors that want structured records.
#pragma once

#include <cstdarg>
#include <functional>
#include <string>
#include <vector>

namespace flashr {

struct raw_sink;  // common/raw_sink.h

enum class log_level : int { none = 0, warn = 1, info = 2, debug = 3 };

void set_log_level(log_level lvl);
log_level get_log_level();

const char* log_level_name(log_level lvl);

/// Parse a level name ("none"/"warn"/"info"/"debug", or "0".."3") into
/// `*out`. Returns false (leaving `*out` untouched) on anything else. Used
/// by init() for the FLASHR_LOG_LEVEL environment variable.
bool log_level_from_name(const char* name, log_level* out);

/// Shape of the built-in stderr sink's output.
enum class log_format : int {
  text = 0,  ///< "[flashr W] message"
  json = 1,  ///< {"ts_ns":...,"level":"warn","msg":"message"} per line
};

void set_log_format(log_format f);
log_format get_log_format();

/// Receives every emitted record, already printf-formatted. Called under the
/// logger mutex (records never interleave); must not log re-entrantly.
/// Pass nullptr to restore the default stderr sink.
using log_sink = std::function<void(log_level, const char* msg)>;
void set_log_sink(log_sink sink);

void log_msg(log_level lvl, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// The last emitted log records (newest last), each as "[level] message".
/// Every record that clears the level gate is also retained in a small
/// fixed in-process ring regardless of the active sink, so incident
/// bundles can include the log tail. Returns at most `max` records.
std::vector<std::string> log_tail(int max);

/// Crash-path dump of the same ring as a LOGR section (raw binary; see
/// obs/crash_handler.h for framing). Async-signal-safe: reads the ring
/// with relaxed atomics into a static snapshot, never takes the logger
/// mutex — a record being written concurrently may come out truncated.
void log_dump_raw(raw_sink& sink) noexcept;

}  // namespace flashr

#define FLASHR_WARN(...) ::flashr::log_msg(::flashr::log_level::warn, __VA_ARGS__)
#define FLASHR_INFO(...) ::flashr::log_msg(::flashr::log_level::info, __VA_ARGS__)
#define FLASHR_DEBUG(...) ::flashr::log_msg(::flashr::log_level::debug, __VA_ARGS__)
