// Minimal leveled logger. Quiet by default; benchmarks and examples raise the
// level to info to narrate progress. Thread-safe via a single mutex — logging
// is never on a hot path.
#pragma once

#include <cstdarg>

namespace flashr {

enum class log_level : int { none = 0, warn = 1, info = 2, debug = 3 };

void set_log_level(log_level lvl);
log_level get_log_level();

void log_msg(log_level lvl, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace flashr

#define FLASHR_WARN(...) ::flashr::log_msg(::flashr::log_level::warn, __VA_ARGS__)
#define FLASHR_INFO(...) ::flashr::log_msg(::flashr::log_level::info, __VA_ARGS__)
#define FLASHR_DEBUG(...) ::flashr::log_msg(::flashr::log_level::debug, __VA_ARGS__)
