#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace flashr {

namespace {
std::atomic<int> g_level{static_cast<int>(log_level::warn)};
std::mutex g_mutex;
}  // namespace

void set_log_level(log_level lvl) { g_level.store(static_cast<int>(lvl)); }

log_level get_log_level() { return static_cast<log_level>(g_level.load()); }

void log_msg(log_level lvl, const char* fmt, ...) {
  if (static_cast<int>(lvl) > g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  const char* tag = lvl == log_level::warn   ? "W"
                    : lvl == log_level::info ? "I"
                                             : "D";
  std::fprintf(stderr, "[flashr %s] ", tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fprintf(stderr, "\n");
}

}  // namespace flashr
