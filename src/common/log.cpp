#include "common/log.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "common/timer.h"

namespace flashr {

namespace {
std::atomic<int> g_level{static_cast<int>(log_level::warn)};
std::atomic<int> g_format{static_cast<int>(log_format::text)};
std::mutex g_mutex;
log_sink g_sink;  // guarded by g_mutex; empty = default stderr sink

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

void default_sink(log_level lvl, const char* msg) {
  if (static_cast<log_format>(g_format.load(std::memory_order_relaxed)) ==
      log_format::json) {
    std::string line = "{\"ts_ns\":";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, now_ns());
    line += buf;
    line += ",\"level\":\"";
    line += log_level_name(lvl);
    line += "\",\"msg\":\"";
    append_json_escaped(line, msg);
    line += "\"}\n";
    std::fwrite(line.data(), 1, line.size(), stderr);
  } else {
    const char* tag = lvl == log_level::warn   ? "W"
                      : lvl == log_level::info ? "I"
                                               : "D";
    std::fprintf(stderr, "[flashr %s] %s\n", tag, msg);
  }
}

}  // namespace

void set_log_level(log_level lvl) { g_level.store(static_cast<int>(lvl)); }

log_level get_log_level() { return static_cast<log_level>(g_level.load()); }

const char* log_level_name(log_level lvl) {
  switch (lvl) {
    case log_level::none: return "none";
    case log_level::warn: return "warn";
    case log_level::info: return "info";
    case log_level::debug: return "debug";
  }
  return "?";
}

bool log_level_from_name(const char* name, log_level* out) {
  if (name == nullptr || out == nullptr) return false;
  const std::string_view s(name);
  for (int i = static_cast<int>(log_level::none);
       i <= static_cast<int>(log_level::debug); ++i) {
    const auto lvl = static_cast<log_level>(i);
    if (s == log_level_name(lvl)) {
      *out = lvl;
      return true;
    }
  }
  if (s.size() == 1 && s[0] >= '0' && s[0] <= '3') {
    *out = static_cast<log_level>(s[0] - '0');
    return true;
  }
  return false;
}

void set_log_format(log_format f) { g_format.store(static_cast<int>(f)); }

log_format get_log_format() {
  return static_cast<log_format>(g_format.load());
}

void set_log_sink(log_sink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void log_msg(log_level lvl, const char* fmt, ...) {
  if (static_cast<int>(lvl) > g_level.load(std::memory_order_relaxed)) return;
  char msg[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, args);
  va_end(args);
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink)
    g_sink(lvl, msg);
  else
    default_sink(lvl, msg);
}

}  // namespace flashr
