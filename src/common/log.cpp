#include "common/log.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "common/raw_sink.h"
#include "common/timer.h"

namespace flashr {

namespace {
std::atomic<int> g_level{static_cast<int>(log_level::warn)};
std::atomic<int> g_format{static_cast<int>(log_format::text)};
std::mutex g_mutex;
log_sink g_sink;  // guarded by g_mutex; empty = default stderr sink

// Bounded ring of the last emitted records, for incident bundles and crash
// dumps. Written under g_mutex (so record order matches sink order); fields
// are atomics only so the crash path can read them lock-free.
constexpr std::uint32_t kLogSlots = 128;
constexpr std::uint32_t kLogText = 252;

struct log_slot {
  std::atomic<std::uint32_t> lvl{0};
  std::atomic<std::uint32_t> len{0};
  char text[kLogText];
};

log_slot g_log_ring[kLogSlots];
std::atomic<std::uint64_t> g_log_head{0};  // total records ever emitted

void ring_record(log_level lvl, const char* msg) {
  const std::uint64_t head = g_log_head.load(std::memory_order_relaxed);
  log_slot& slot = g_log_ring[head % kLogSlots];
  std::size_t len = std::strlen(msg);
  if (len > kLogText) len = kLogText;
  slot.len.store(0, std::memory_order_relaxed);  // invalidate while copying
  std::memcpy(slot.text, msg, len);
  slot.lvl.store(static_cast<std::uint32_t>(lvl), std::memory_order_relaxed);
  slot.len.store(static_cast<std::uint32_t>(len), std::memory_order_release);
  g_log_head.store(head + 1, std::memory_order_release);
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

void default_sink(log_level lvl, const char* msg) {
  if (static_cast<log_format>(g_format.load(std::memory_order_relaxed)) ==
      log_format::json) {
    std::string line = "{\"ts_ns\":";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, now_ns());
    line += buf;
    line += ",\"level\":\"";
    line += log_level_name(lvl);
    line += "\",\"msg\":\"";
    append_json_escaped(line, msg);
    line += "\"}\n";
    std::fwrite(line.data(), 1, line.size(), stderr);
  } else {
    const char* tag = lvl == log_level::warn   ? "W"
                      : lvl == log_level::info ? "I"
                                               : "D";
    std::fprintf(stderr, "[flashr %s] %s\n", tag, msg);
  }
}

}  // namespace

void set_log_level(log_level lvl) { g_level.store(static_cast<int>(lvl)); }

log_level get_log_level() { return static_cast<log_level>(g_level.load()); }

const char* log_level_name(log_level lvl) {
  switch (lvl) {
    case log_level::none: return "none";
    case log_level::warn: return "warn";
    case log_level::info: return "info";
    case log_level::debug: return "debug";
  }
  return "?";
}

bool log_level_from_name(const char* name, log_level* out) {
  if (name == nullptr || out == nullptr) return false;
  const std::string_view s(name);
  for (int i = static_cast<int>(log_level::none);
       i <= static_cast<int>(log_level::debug); ++i) {
    const auto lvl = static_cast<log_level>(i);
    if (s == log_level_name(lvl)) {
      *out = lvl;
      return true;
    }
  }
  if (s.size() == 1 && s[0] >= '0' && s[0] <= '3') {
    *out = static_cast<log_level>(s[0] - '0');
    return true;
  }
  return false;
}

void set_log_format(log_format f) { g_format.store(static_cast<int>(f)); }

log_format get_log_format() {
  return static_cast<log_format>(g_format.load());
}

void set_log_sink(log_sink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void log_msg(log_level lvl, const char* fmt, ...) {
  if (static_cast<int>(lvl) > g_level.load(std::memory_order_relaxed)) return;
  char msg[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, args);
  va_end(args);
  std::lock_guard<std::mutex> lock(g_mutex);
  ring_record(lvl, msg);
  if (g_sink)
    g_sink(lvl, msg);
  else
    default_sink(lvl, msg);
}

std::vector<std::string> log_tail(int max) {
  std::vector<std::string> out;
  if (max <= 0) return out;
  std::lock_guard<std::mutex> lock(g_mutex);
  const std::uint64_t head = g_log_head.load(std::memory_order_relaxed);
  std::uint64_t n = head < kLogSlots ? head : kLogSlots;
  if (n > static_cast<std::uint64_t>(max)) n = static_cast<std::uint64_t>(max);
  out.reserve(n);
  for (std::uint64_t i = head - n; i < head; ++i) {
    const log_slot& slot = g_log_ring[i % kLogSlots];
    const std::uint32_t len = slot.len.load(std::memory_order_acquire);
    const auto lvl = static_cast<log_level>(
        slot.lvl.load(std::memory_order_relaxed));
    std::string rec = "[";
    rec += log_level_name(lvl);
    rec += "] ";
    rec.append(slot.text, len);
    out.push_back(std::move(rec));
  }
  return out;
}

FLASHR_SIGNAL_SAFE void log_dump_raw(raw_sink& sink) noexcept {
  // Snapshot first so lengths cannot change between sizing the section and
  // writing it (a concurrent logger may still be mid-copy; its record comes
  // out truncated, never misframed). Static: one writer (the dump-once
  // guard) and no large stack frames on the crash path.
  struct snap_slot {
    std::uint32_t lvl;
    std::uint32_t len;
    char text[kLogText];
  };
  static snap_slot snap[kLogSlots];
  const std::uint64_t head = g_log_head.load(std::memory_order_relaxed);
  const std::uint64_t n = head < kLogSlots ? head : kLogSlots;
  std::uint64_t payload = 8 + 4;
  for (std::uint64_t i = 0; i < n; ++i) {
    const log_slot& slot = g_log_ring[(head - n + i) % kLogSlots];
    snap[i].lvl = slot.lvl.load(std::memory_order_relaxed);
    std::uint32_t len = slot.len.load(std::memory_order_relaxed);
    if (len > kLogText) len = kLogText;
    snap[i].len = len;
    std::memcpy(snap[i].text, slot.text, len);
    payload += 8 + len;
  }
  sink_tag(sink, "LOGR", payload);
  sink_u64(sink, head);
  sink_u32(sink, static_cast<std::uint32_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    sink_u32(sink, snap[i].lvl);
    sink_u32(sink, snap[i].len);
    sink_put(sink, snap[i].text, snap[i].len);
  }
}

}  // namespace flashr
