#include "common/config.h"

#include <sys/stat.h>

#include <bit>
#include <cstdlib>
#include <mutex>
#include <string_view>

#include "common/error.h"
#include "common/log.h"
#include "obs/incident.h"
#include "obs/metrics.h"
#include "obs/prof_store.h"
#include "obs/profile.h"
#include "obs/sampler.h"
#include "obs/stats_server.h"
#include "obs/trace.h"

namespace flashr {

namespace {
options g_options;
bool g_initialized = false;
std::mutex g_mutex;
}  // namespace

const char* exec_mode_name(exec_mode m) {
  switch (m) {
    case exec_mode::eager: return "eager";
    case exec_mode::mem_fuse: return "mem-fuse";
    case exec_mode::cache_fuse: return "cache-fuse";
  }
  return "?";
}

const char* checksum_policy_name(checksum_policy p) {
  switch (p) {
    case checksum_policy::off: return "off";
    case checksum_policy::verify: return "verify";
    case checksum_policy::repair: return "repair";
  }
  return "?";
}

const char* io_backend_kind_name(io_backend_kind k) {
  switch (k) {
    case io_backend_kind::threads: return "threads";
    case io_backend_kind::uring: return "uring";
    case io_backend_kind::auto_detect: return "auto";
  }
  return "?";
}

void options::validate() const {
  FLASHR_CHECK(num_threads >= 1, "num_threads must be >= 1");
  FLASHR_CHECK(io_threads >= 1, "io_threads must be >= 1");
  FLASHR_CHECK(io_part_rows >= 8 && std::has_single_bit(io_part_rows),
               "io_part_rows must be a power of two >= 8");
  FLASHR_CHECK(pcache_bytes >= 512, "pcache_bytes too small");
  FLASHR_CHECK(stripes >= 1, "stripes must be >= 1");
  FLASHR_CHECK(stripe_unit >= 4096, "stripe_unit must be >= 4096");
  FLASHR_CHECK(numa_nodes >= 1, "numa_nodes must be >= 1");
  FLASHR_CHECK(dispatch_batch >= 1, "dispatch_batch must be >= 1");
  FLASHR_CHECK(prefetch_depth >= -1, "prefetch_depth must be >= -1");
  FLASHR_CHECK(!em_dir.empty(), "em_dir must be set");
  FLASHR_CHECK(io_max_retries >= 0, "io_max_retries must be >= 0");
  FLASHR_CHECK(io_retry_backoff_us >= 0, "io_retry_backoff_us must be >= 0");
  FLASHR_CHECK(io_retry_backoff_cap_us >= 0,
               "io_retry_backoff_cap_us must be >= 0");
  auto valid_prob = [](double p) { return p >= 0.0 && p <= 1.0; };
  FLASHR_CHECK(valid_prob(fault_pread_prob) && valid_prob(fault_pwrite_prob) &&
                   valid_prob(fault_latency_prob) &&
                   valid_prob(fault_short_prob) && valid_prob(fault_stall_prob),
               "fault probabilities must be in [0, 1]");
  FLASHR_CHECK(fault_latency_us >= 0, "fault_latency_us must be >= 0");
  FLASHR_CHECK(fault_stall_us >= 0, "fault_stall_us must be >= 0");
  FLASHR_CHECK(obs_ring_events >= 16 && std::has_single_bit(obs_ring_events),
               "obs_ring_events must be a power of two >= 16");
  FLASHR_CHECK(obs_profile_history >= 1,
               "obs_profile_history must be >= 1");
  FLASHR_CHECK(obs_http_port >= -1 && obs_http_port <= 65535,
               "obs_http_port must be -1 (off) or a port number");
  FLASHR_CHECK(obs_flight_secs >= 1, "obs_flight_secs must be >= 1");
  FLASHR_CHECK(incident_max_bundles >= 1,
               "incident_max_bundles must be >= 1");
  FLASHR_CHECK(obs_sample_hz >= 0 && obs_sample_hz <= 10000,
               "obs_sample_hz must be in [0, 10000]");
  FLASHR_CHECK(obs_prof_keep >= 1, "obs_prof_keep must be >= 1");
  FLASHR_CHECK(uring_queue_depth >= 8 && uring_queue_depth <= 32768,
               "uring_queue_depth must be in [8, 32768]");
}

namespace {

/// Flush the configured trace file when the process exits with tracing on
/// (registered once, on the first init() that arms a trace path).
void write_trace_at_exit() {
  if (obs::trace_on() && !conf().obs_trace_path.empty())
    obs::write_trace(conf().obs_trace_path);
}

/// Flush folded sampler stacks when the process exits with a sample path
/// armed (registered once, like write_trace_at_exit).
void write_folded_at_exit() {
  if (obs::sampler_on() && !conf().obs_sample_path.empty())
    obs::write_folded(conf().obs_sample_path);
}

}  // namespace

void init(const options& opts) {
  opts.validate();
  std::lock_guard<std::mutex> lock(g_mutex);
  g_options = opts;
  if (g_options.num_threads <= 0) g_options.num_threads = 1;
  ::mkdir(g_options.em_dir.c_str(), 0755);
  // FLASHR_TRACE=1 turns tracing on; any other non-"0" value is also the
  // output path, flushed automatically at exit.
  if (const char* env = std::getenv("FLASHR_TRACE");
      env != nullptr && *env != '\0' && std::string_view(env) != "0") {
    g_options.obs_trace = true;
    if (std::string_view(env) != "1") g_options.obs_trace_path = env;
  }
  // FLASHR_PROFILE=1 (any non-"0" value) turns per-node pass profiling on.
  if (const char* env = std::getenv("FLASHR_PROFILE");
      env != nullptr && *env != '\0' && std::string_view(env) != "0") {
    g_options.obs_profile = true;
  }
  // FLASHR_SAMPLE=1 turns the sampling profiler on at the default 97 Hz;
  // an integer value sets the rate; any other non-"0" value is also the
  // folded-stack output path, flushed automatically at exit.
  if (const char* env = std::getenv("FLASHR_SAMPLE");
      env != nullptr && *env != '\0' && std::string_view(env) != "0") {
    char* end = nullptr;
    const long hz = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && hz > 0) {
      g_options.obs_sample_hz = static_cast<int>(hz);
    } else {
      if (g_options.obs_sample_hz <= 0) g_options.obs_sample_hz = 97;
      if (std::string_view(env) != "1") g_options.obs_sample_path = env;
    }
  }
  // FLASHR_PROF_DIR=<dir> arms the profile-history store: one
  // flashr-prof-v1 record appended per process exit.
  if (const char* env = std::getenv("FLASHR_PROF_DIR");
      env != nullptr && *env != '\0') {
    g_options.obs_prof_dir = env;
  }
  // FLASHR_HTTP=<port> starts the stats server (0 = ephemeral port).
  if (const char* env = std::getenv("FLASHR_HTTP");
      env != nullptr && *env != '\0') {
    g_options.obs_http_port = std::atoi(env);
  }
  // FLASHR_FLIGHT=0 disables the always-on flight recorder; any other value
  // (or unset) leaves it on.
  if (const char* env = std::getenv("FLASHR_FLIGHT");
      env != nullptr && *env != '\0') {
    g_options.obs_flight = std::string_view(env) != "0";
  }
  // FLASHR_INCIDENT_DIR=<dir> arms incident bundles + the crash handler.
  if (const char* env = std::getenv("FLASHR_INCIDENT_DIR");
      env != nullptr && *env != '\0') {
    g_options.incident_dir = env;
  }
  // FLASHR_IO_BACKEND=threads|uring|auto selects the async I/O backend
  // (CI runs the whole suite under `uring` this way).
  if (const char* env = std::getenv("FLASHR_IO_BACKEND");
      env != nullptr && *env != '\0') {
    const std::string_view v(env);
    if (v == "threads")
      g_options.io_backend = io_backend_kind::threads;
    else if (v == "uring")
      g_options.io_backend = io_backend_kind::uring;
    else if (v == "auto")
      g_options.io_backend = io_backend_kind::auto_detect;
    else
      FLASHR_WARN("FLASHR_IO_BACKEND: unknown backend '%s' (ignored)", env);
  }
  // FLASHR_LOG_LEVEL=none|warn|info|debug (or 0..3) filters the log sink.
  if (const char* env = std::getenv("FLASHR_LOG_LEVEL");
      env != nullptr && *env != '\0') {
    log_level lvl;
    if (log_level_from_name(env, &lvl))
      set_log_level(lvl);
    else
      FLASHR_WARN("FLASHR_LOG_LEVEL: unknown level '%s' (ignored)", env);
  }
  obs::set_trace_enabled(g_options.obs_trace);
  obs::set_flight_enabled(g_options.obs_flight);
  obs::set_metrics_enabled(g_options.obs_metrics);
  obs::set_profile_enabled(g_options.obs_profile);
  // Sampler counters register even while off so /metrics always exports
  // flashr_sampler_*; the sampler itself starts only when a rate is set.
  obs::sampler_register_metrics();
  if (g_options.obs_sample_hz > 0) {
    obs::sampler_start(g_options.obs_sample_hz);
    if (!g_options.obs_sample_path.empty()) {
      static const bool samp_registered = [] {
        std::atexit(write_folded_at_exit);
        return true;
      }();
      (void)samp_registered;
    }
  } else {
    obs::sampler_stop();
  }
  if (!g_options.obs_prof_dir.empty())
    obs::prof_store_arm(g_options.obs_prof_dir, g_options.obs_prof_keep);
  else
    obs::prof_store_disarm();
  if (g_options.obs_http_port >= 0)
    obs::stats_server::global().start(g_options.obs_http_port);
  else
    obs::stats_server::global().stop();
  if (g_options.obs_trace && !g_options.obs_trace_path.empty()) {
    static const bool registered = [] {
      std::atexit(write_trace_at_exit);
      return true;
    }();
    (void)registered;
  }
  g_initialized = true;
  // Incident subsystem last, after g_initialized: the monitor thread reads
  // conf(), which must not re-enter init(). Counters register even while
  // disarmed so /metrics always exports flashr_incident_*.
  obs::incident_register_metrics();
  if (!g_options.incident_dir.empty())
    obs::incident_arm(g_options.incident_dir);
  else
    obs::incident_disarm();
  FLASHR_DEBUG("initialized: threads=%d io_threads=%d part_rows=%zu mode=%s",
               g_options.num_threads, g_options.io_threads,
               g_options.io_part_rows, exec_mode_name(g_options.mode));
}

void shutdown() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_initialized = false;
}

const options& conf() {
  if (!g_initialized) init(options());
  return g_options;
}

bool initialized() { return g_initialized; }

options& mutable_conf() {
  if (!g_initialized) init(options());
  return g_options;
}

}  // namespace flashr
