#include "common/error.h"

#include <cstring>

#include "obs/crash_handler.h"

namespace flashr {

namespace {
std::string describe(const std::string& what, const std::string& path,
                     std::size_t offset, std::size_t len, int err) {
  std::string s = what;
  s += " (file=" + path;
  s += " offset=" + std::to_string(offset);
  s += " len=" + std::to_string(len);
  if (err != 0) {
    s += " errno=" + std::to_string(err);
    s += " ";
    s += std::strerror(err);
  }
  s += ")";
  return s;
}
}  // namespace

io_error::io_error(const std::string& what, std::string path,
                   std::size_t offset, std::size_t len, int err)
    : error(describe(what, path, offset, len, err)),
      path_(std::move(path)),
      offset_(offset),
      len_(len),
      err_(err) {}

namespace {
std::string describe_timeout(const std::string& what, std::uint64_t pass_id,
                             std::uint64_t elapsed_ns, std::uint64_t limit_ms) {
  std::string s = what;
  s += " (pass=" + std::to_string(pass_id);
  s += " elapsed_ms=" + std::to_string(elapsed_ns / 1000000);
  s += " limit_ms=" + std::to_string(limit_ms);
  s += ")";
  return s;
}

std::string describe_overload(const std::string& what, std::uint64_t pass_id,
                              std::uint64_t requested, std::uint64_t budget) {
  std::string s = what;
  s += " (pass=" + std::to_string(pass_id);
  s += " requested=" + std::to_string(requested);
  s += " budget=" + std::to_string(budget);
  s += ")";
  return s;
}
}  // namespace

timeout_error::timeout_error(const std::string& what, std::uint64_t pass_id,
                             std::uint64_t elapsed_ns, std::uint64_t limit_ms)
    : error(describe_timeout(what, pass_id, elapsed_ns, limit_ms)),
      pass_id_(pass_id),
      elapsed_ns_(elapsed_ns),
      limit_ms_(limit_ms) {}

overload_error::overload_error(const std::string& what, std::uint64_t pass_id,
                               std::uint64_t requested, std::uint64_t budget)
    : error(describe_overload(what, pass_id, requested, budget)),
      pass_id_(pass_id),
      requested_(requested),
      budget_(budget) {}

bool is_transient(const std::exception_ptr& e) noexcept {
  if (!e) return false;
  try {
    std::rethrow_exception(e);
  } catch (const error& err) {
    return err.transient();
  } catch (...) {
    return false;
  }
}

void throw_error(const std::string& msg) { throw error(msg); }
void throw_io_error(const std::string& msg) { throw io_error(msg); }
void throw_io_error_at(const std::string& msg, std::string path,
                       std::size_t offset, std::size_t len, int err) {
  throw io_error(msg, std::move(path), offset, len, err);
}
void throw_shape_error(const std::string& msg) { throw shape_error(msg); }

namespace detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "flashr assertion failed: %s at %s:%d: %s\n", expr,
               file, line, msg.c_str());
  // Black-box dump before dying (no-op unless the crash handler is armed).
  // Fixed buffer, no allocation: a lock-rank abort arrives holding engine
  // locks, and the least surprising composition wins right before abort().
  // The subsequent SIGABRT handler finds the dump-once guard already taken.
  char reason[512];
  std::snprintf(reason, sizeof(reason), "assert: %s at %s:%d: %s", expr, file,
                line, msg.c_str());
  obs::crash_dump_now(0, reason);
  std::abort();
}

}  // namespace detail
}  // namespace flashr
