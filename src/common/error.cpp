#include "common/error.h"

#include <cstring>

namespace flashr {

namespace {
std::string describe(const std::string& what, const std::string& path,
                     std::size_t offset, std::size_t len, int err) {
  std::string s = what;
  s += " (file=" + path;
  s += " offset=" + std::to_string(offset);
  s += " len=" + std::to_string(len);
  if (err != 0) {
    s += " errno=" + std::to_string(err);
    s += " ";
    s += std::strerror(err);
  }
  s += ")";
  return s;
}
}  // namespace

io_error::io_error(const std::string& what, std::string path,
                   std::size_t offset, std::size_t len, int err)
    : error(describe(what, path, offset, len, err)),
      path_(std::move(path)),
      offset_(offset),
      len_(len),
      err_(err) {}

void throw_error(const std::string& msg) { throw error(msg); }
void throw_io_error(const std::string& msg) { throw io_error(msg); }
void throw_io_error_at(const std::string& msg, std::string path,
                       std::size_t offset, std::size_t len, int err) {
  throw io_error(msg, std::move(path), offset, len, err);
}
void throw_shape_error(const std::string& msg) { throw shape_error(msg); }

namespace detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "flashr assertion failed: %s at %s:%d: %s\n", expr,
               file, line, msg.c_str());
  std::abort();
}

}  // namespace detail
}  // namespace flashr
