#include "common/error.h"

namespace flashr {

void throw_error(const std::string& msg) { throw error(msg); }
void throw_io_error(const std::string& msg) { throw io_error(msg); }
void throw_shape_error(const std::string& msg) { throw shape_error(msg); }

namespace detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& msg) {
  std::fprintf(stderr, "flashr assertion failed: %s at %s:%d: %s\n", expr,
               file, line, msg.c_str());
  std::abort();
}

}  // namespace detail
}  // namespace flashr
