// Counter-based random number generation. FlashR's runif.matrix/rnorm.matrix
// create matrices whose partitions are generated on demand; to make the same
// (seed, element-index) pair produce the same value no matter how the matrix
// is partitioned or which thread materializes it, we derive every element
// from a stateless hash of its global index (SplitMix64 finalizer), rather
// than from a sequential stream.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace flashr {

/// SplitMix64 finalizer: a high-quality 64-bit mix. Stateless.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a (seed, counter) pair.
inline double counter_uniform(std::uint64_t seed, std::uint64_t counter) {
  const std::uint64_t h = mix64(seed ^ mix64(counter));
  // 53 high bits -> [0,1) double.
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

/// Standard-normal double from a (seed, counter) pair via Box-Muller. Each
/// element consumes two independent uniforms derived from disjoint counter
/// streams, so consecutive elements stay independent.
inline double counter_normal(std::uint64_t seed, std::uint64_t counter) {
  double u1 = counter_uniform(seed ^ 0x5bf03635d0c63eb1ULL, counter);
  const double u2 = counter_uniform(seed ^ 0xa48b23be42f0f2afULL, counter);
  if (u1 <= 0.0) u1 = 1e-300;  // guard log(0)
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

/// Small sequential PRNG for host-side (non-matrix) randomness: xoshiro-like
/// based on the SplitMix64 stream.
class rng64 {
 public:
  explicit rng64(std::uint64_t seed) : state_(seed ? seed : 0x853c49e6748fea9bULL) {}

  std::uint64_t next_u64() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return mix64(state_);
  }

  double next_uniform() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  double next_normal() {
    double u1 = next_uniform();
    const double u2 = next_uniform();
    if (u1 <= 0.0) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) {
    return n == 0 ? 0 : next_u64() % n;
  }

 private:
  std::uint64_t state_;
};

}  // namespace flashr
