// Wall-clock timing utilities used by the benchmark harness and the engine's
// internal statistics.
//
// This header (and src/obs/) is the only place the engine may read the raw
// clock — the lint rule `raw-clock` (tools/lint_flashr.py) enforces it, so
// every timestamp in statistics, traces and logs comes off one steady
// timeline.
#pragma once

#include <chrono>
#include <cstdint>

namespace flashr {

/// Steady-clock nanoseconds since an arbitrary (per-process) epoch. The
/// engine's single time source: trace events, latency histograms and stall
/// counters all share this timeline, so durations computed across subsystems
/// are comparable.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class timer {
 public:
  timer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace flashr
