// Wall-clock timing utilities used by the benchmark harness and the engine's
// internal statistics.
#pragma once

#include <chrono>

namespace flashr {

class timer {
 public:
  timer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace flashr
