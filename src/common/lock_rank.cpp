// Runtime half of the lock-rank hierarchy (see thread_safety.h for the
// table and the rule). Each thread keeps a small stack of the ranked
// flashr::mutexes it holds, in acquisition order; acquiring a mutex whose
// rank is not strictly greater than everything held is a latent deadlock
// and aborts immediately with both lock names.
//
// The stack is a fixed-size thread_local array: no allocation (the checker
// runs inside mutex::lock, including from async-I/O completion contexts
// where allocating would itself break the nonblocking rule) and no
// destruction-order hazards at thread exit. Depth 16 is 4x the deepest
// chain the engine can form (watchdog -> prefetch window is 2; the stats
// path peaks at 3).

#include "common/thread_safety.h"

#include <cstdio>

#include "common/error.h"

namespace flashr::detail {

namespace {

struct held_entry {
  const void* m;
  const lock_rank::rank_t* rank;
};

constexpr int kMaxHeld = 16;

thread_local held_entry t_held[kMaxHeld];
thread_local int t_depth = 0;

}  // namespace

void rank_check(const void* m, const lock_rank::rank_t& r) {
  for (int i = 0; i < t_depth; ++i) {
    if (t_held[i].m == m) {
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "recursive lock of '%s' (rank %d) on the same thread",
                    r.name, r.value);
      assert_fail("lock rank order", "thread_safety.h", 0, msg);
    }
    if (t_held[i].rank->value >= r.value) {
      char msg[160];
      std::snprintf(
          msg, sizeof(msg),
          "lock rank inversion: acquiring '%s' (rank %d) while holding "
          "'%s' (rank %d); ranks must strictly increase",
          r.name, r.value, t_held[i].rank->name, t_held[i].rank->value);
      assert_fail("lock rank order", "thread_safety.h", 0, msg);
    }
  }
}

void rank_note(const void* m, const lock_rank::rank_t& r) {
  if (t_depth >= kMaxHeld) {
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "held-lock stack overflow (%d ranked locks) at '%s'",
                  t_depth, r.name);
    assert_fail("lock rank depth", "thread_safety.h", 0, msg);
  }
  t_held[t_depth].m = m;
  t_held[t_depth].rank = &r;
  ++t_depth;
}

void rank_forget(const void* m) noexcept {
  // Last occurrence, scanned from the top: unlocks are LIFO in practice,
  // and a mutex locked while the gate was off is simply absent (no-op).
  for (int i = t_depth - 1; i >= 0; --i) {
    if (t_held[i].m != m) continue;
    for (int j = i; j + 1 < t_depth; ++j) t_held[j] = t_held[j + 1];
    --t_depth;
    return;
  }
}

int held_ranks(int* out, int max) noexcept {
  const int n = t_depth < max ? t_depth : max;
  for (int i = 0; i < n; ++i) out[i] = t_held[i].rank->value;
  return t_depth;
}

}  // namespace flashr::detail
