// Runtime half of the lock-rank hierarchy (see thread_safety.h for the
// table and the rule). Each thread keeps a small stack of the ranked
// flashr::mutexes it holds, in acquisition order; acquiring a mutex whose
// rank is not strictly greater than everything held is a latent deadlock
// and aborts immediately with both lock names.
//
// The per-thread stacks live in a fixed global registry of atomic records
// rather than plain thread_locals, so incident diagnostics can snapshot
// EVERY thread's held ranks (held_ranks_all_threads, /debug/stacks, crash
// dumps) without any locking. A thread claims a registry slot on first use
// (CAS on the tid field) and releases it at thread exit; the owning thread
// is the only writer of its record, so its own reads/writes are plain
// relaxed atomics and the checker's fast path stays allocation- and
// lock-free (it runs inside mutex::lock, including from async-I/O
// completion contexts). Cross-thread snapshot reads are relaxed too: a
// concurrently mutating stack may read momentarily inconsistent, which is
// acceptable for diagnostics. Depth 16 is 4x the deepest chain the engine
// can form (watchdog -> prefetch window is 2; the stats path peaks at 3).

#include "common/thread_safety.h"

#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "common/error.h"
#include "common/raw_sink.h"

namespace flashr::detail {

namespace {

constexpr int kMaxHeld = 16;
constexpr int kMaxThreads = 256;

static_assert(sizeof(thread_ranks::values) / sizeof(int) == kMaxHeld,
              "thread_ranks arrays must match the checker's stack depth");

struct rank_rec {
  std::atomic<unsigned> tid{0};  ///< OS thread id; 0 = free slot
  std::atomic<int> depth{0};
  std::atomic<const void*> m[kMaxHeld] = {};
  std::atomic<const lock_rank::rank_t*> rank[kMaxHeld] = {};
};

rank_rec g_recs[kMaxThreads];

unsigned os_tid() noexcept {
  return static_cast<unsigned>(::syscall(SYS_gettid));
}

struct tls_slot {
  rank_rec* rec = nullptr;
  bool registered = false;
  ~tls_slot() {
    if (rec != nullptr && registered) {
      rec->depth.store(0, std::memory_order_relaxed);
      rec->tid.store(0, std::memory_order_release);  // slot becomes reusable
    }
  }
};

thread_local tls_slot t_slot;

rank_rec& local_rec() noexcept {
  if (t_slot.rec == nullptr) {
    const unsigned tid = os_tid();
    for (int i = 0; i < kMaxThreads; ++i) {
      unsigned expect = 0;
      if (g_recs[i].tid.compare_exchange_strong(expect, tid,
                                                std::memory_order_acq_rel)) {
        t_slot.rec = &g_recs[i];
        t_slot.registered = true;
        return *t_slot.rec;
      }
    }
    // Registry full (> kMaxThreads concurrent threads): rank checking still
    // works through a private record; the thread is just invisible to
    // cross-thread snapshots.
    static thread_local rank_rec overflow;
    overflow.tid.store(tid, std::memory_order_relaxed);
    t_slot.rec = &overflow;
  }
  return *t_slot.rec;
}

}  // namespace

void rank_check(const void* m, const lock_rank::rank_t& r) {
  rank_rec& rec = local_rec();
  const int depth = rec.depth.load(std::memory_order_relaxed);
  for (int i = 0; i < depth; ++i) {
    const lock_rank::rank_t* held = rec.rank[i].load(std::memory_order_relaxed);
    if (rec.m[i].load(std::memory_order_relaxed) == m) {
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "recursive lock of '%s' (rank %d) on the same thread",
                    r.name, r.value);
      assert_fail("lock rank order", "thread_safety.h", 0, msg);
    }
    if (held->value >= r.value) {
      char msg[160];
      std::snprintf(
          msg, sizeof(msg),
          "lock rank inversion: acquiring '%s' (rank %d) while holding "
          "'%s' (rank %d); ranks must strictly increase",
          r.name, r.value, held->name, held->value);
      assert_fail("lock rank order", "thread_safety.h", 0, msg);
    }
  }
}

void rank_note(const void* m, const lock_rank::rank_t& r) {
  rank_rec& rec = local_rec();
  const int depth = rec.depth.load(std::memory_order_relaxed);
  if (depth >= kMaxHeld) {
    char msg[96];
    std::snprintf(msg, sizeof(msg),
                  "held-lock stack overflow (%d ranked locks) at '%s'",
                  depth, r.name);
    assert_fail("lock rank depth", "thread_safety.h", 0, msg);
  }
  rec.m[depth].store(m, std::memory_order_relaxed);
  rec.rank[depth].store(&r, std::memory_order_relaxed);
  // Entries first, then the count: a relaxed cross-thread reader sees a
  // prefix that was valid at some point, never an uninitialized slot.
  rec.depth.store(depth + 1, std::memory_order_release);
}

void rank_forget(const void* m) noexcept {
  if (t_slot.rec == nullptr) return;  // nothing ever noted on this thread
  rank_rec& rec = *t_slot.rec;
  const int depth = rec.depth.load(std::memory_order_relaxed);
  // Last occurrence, scanned from the top: unlocks are LIFO in practice,
  // and a mutex locked while the gate was off is simply absent (no-op).
  for (int i = depth - 1; i >= 0; --i) {
    if (rec.m[i].load(std::memory_order_relaxed) != m) continue;
    for (int j = i; j + 1 < depth; ++j) {
      rec.m[j].store(rec.m[j + 1].load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
      rec.rank[j].store(rec.rank[j + 1].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
    rec.depth.store(depth - 1, std::memory_order_release);
    return;
  }
}

int held_ranks(int* out, int max) noexcept {
  if (t_slot.rec == nullptr) return 0;
  rank_rec& rec = *t_slot.rec;
  const int depth = rec.depth.load(std::memory_order_relaxed);
  const int n = depth < max ? depth : max;
  for (int i = 0; i < n; ++i)
    out[i] = rec.rank[i].load(std::memory_order_relaxed)->value;
  return depth;
}

int held_ranks_all_threads(thread_ranks* out, int max) noexcept {
  int n = 0;
  for (int i = 0; i < kMaxThreads && n < max; ++i) {
    const unsigned tid = g_recs[i].tid.load(std::memory_order_acquire);
    if (tid == 0) continue;
    int depth = g_recs[i].depth.load(std::memory_order_relaxed);
    if (depth < 0) depth = 0;
    if (depth > kMaxHeld) depth = kMaxHeld;
    thread_ranks& tr = out[n];
    tr.tid = tid;
    tr.depth = 0;
    for (int j = 0; j < depth; ++j) {
      const lock_rank::rank_t* r =
          g_recs[i].rank[j].load(std::memory_order_relaxed);
      if (r == nullptr) break;  // torn snapshot of a growing stack
      tr.values[tr.depth] = r->value;
      tr.names[tr.depth] = r->name;
      ++tr.depth;
    }
    ++n;
  }
  return n;
}

FLASHR_SIGNAL_SAFE void rank_dump_raw(raw_sink& sink) noexcept {
  // Static snapshot buffer: the crash path must not grow the stack, and the
  // dump-once guard in crash_handler.cpp means a single writer.
  static thread_ranks snap[kMaxThreads];
  const int n = held_ranks_all_threads(snap, kMaxThreads);
  std::uint64_t len = 4;
  for (int i = 0; i < n; ++i)
    len += 8 + 4u * static_cast<unsigned>(snap[i].depth);
  sink_tag(sink, "RANK", len);
  sink_u32(sink, static_cast<std::uint32_t>(n));
  for (int i = 0; i < n; ++i) {
    sink_u32(sink, snap[i].tid);
    sink_u32(sink, static_cast<std::uint32_t>(snap[i].depth));
    for (int j = 0; j < snap[i].depth; ++j)
      sink_u32(sink, static_cast<std::uint32_t>(snap[i].values[j]));
  }
}

}  // namespace flashr::detail
