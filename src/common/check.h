// Debug invariant validator: the runtime switch and its check macro.
//
// The engine's lifecycle invariants — every pool buffer returned exactly
// once, no writes into returned buffers, Pcache refcounts reaching zero,
// structurally sound DAGs — are validated by code that is always compiled
// but gated behind a cheap runtime flag, so death tests can exercise it in
// any build. Tests enable it with flashr::invariant_scope; building with
// -DFLASHR_CHECK_INVARIANTS=ON (cmake) forces it on for every execution and
// lets the compiler fold the gate away.
//
// A failed FLASHR_DCHECK is a programming error, not an environmental one:
// it aborts with a diagnostic (via common/error.h's assert_fail) rather than
// throwing, exactly like FLASHR_ASSERT, because the process state is by
// definition corrupt when a lifecycle invariant breaks.
#pragma once

#include <atomic>

#include "common/error.h"

namespace flashr {

#ifdef FLASHR_CHECK_INVARIANTS
inline constexpr bool kInvariantBuild = true;
#else
inline constexpr bool kInvariantBuild = false;
#endif

namespace detail {
/// Runtime gate; read on hot paths, so a relaxed atomic.
extern std::atomic<bool> g_invariants;
}  // namespace detail

/// Whether invariant validation is active (compile-time forced or runtime
/// enabled).
inline bool invariants_enabled() noexcept {
  return kInvariantBuild ||
         detail::g_invariants.load(std::memory_order_relaxed);
}

/// Flip the runtime gate. Prefer invariant_scope in tests.
inline void set_invariants_enabled(bool on) noexcept {
  detail::g_invariants.store(on, std::memory_order_relaxed);
}

/// RAII enable (or disable) of invariant validation for a test region.
class invariant_scope {
 public:
  explicit invariant_scope(bool on = true)
      : prev_(detail::g_invariants.load(std::memory_order_relaxed)) {
    set_invariants_enabled(on);
  }
  ~invariant_scope() { set_invariants_enabled(prev_); }
  invariant_scope(const invariant_scope&) = delete;
  invariant_scope& operator=(const invariant_scope&) = delete;

 private:
  bool prev_;
};

/// Byte pattern written over a buffer when it returns to the pool. A buffer
/// handed out again with any byte differing was written after its return —
/// the use-after-return-to-pool case poisoning exists to catch.
inline constexpr unsigned char kPoisonByte = 0xDB;

}  // namespace flashr

/// Validated only when invariants are enabled; aborts with a diagnostic on
/// failure. Use for lifecycle/structural invariants whose continuous checks
/// would be too costly for FLASHR_ASSERT.
#define FLASHR_DCHECK(expr, msg)                                          \
  do {                                                                    \
    if (::flashr::invariants_enabled() && !(expr))                        \
      ::flashr::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));    \
  } while (0)
