// Scalar element types supported by FlashR matrices and the kernel dispatch
// machinery that maps a runtime scalar_type tag onto template instantiations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace flashr {

/// Element types a dense or sparse matrix may hold. FlashR (the paper)
/// supports generic element types through its GenOps; we support the four
/// types the evaluation actually exercises.
enum class scalar_type : int {
  f64 = 0,
  f32 = 1,
  i64 = 2,
  i32 = 3,
};

constexpr std::size_t type_size(scalar_type t) noexcept {
  switch (t) {
    case scalar_type::f64: return 8;
    case scalar_type::f32: return 4;
    case scalar_type::i64: return 8;
    case scalar_type::i32: return 4;
  }
  return 0;
}

constexpr const char* type_name(scalar_type t) noexcept {
  switch (t) {
    case scalar_type::f64: return "f64";
    case scalar_type::f32: return "f32";
    case scalar_type::i64: return "i64";
    case scalar_type::i32: return "i32";
  }
  return "?";
}

template <typename T>
constexpr scalar_type type_of();

template <> constexpr scalar_type type_of<double>() { return scalar_type::f64; }
template <> constexpr scalar_type type_of<float>() { return scalar_type::f32; }
template <> constexpr scalar_type type_of<std::int64_t>() { return scalar_type::i64; }
template <> constexpr scalar_type type_of<std::int32_t>() { return scalar_type::i32; }

/// Result type of a binary operation between two element types: the usual
/// promotion lattice i32 < i64 < f32 < f64.
constexpr scalar_type promote(scalar_type a, scalar_type b) noexcept {
  auto rank = [](scalar_type t) {
    switch (t) {
      case scalar_type::i32: return 0;
      case scalar_type::i64: return 1;
      case scalar_type::f32: return 2;
      case scalar_type::f64: return 3;
    }
    return 3;
  };
  return rank(a) >= rank(b) ? a : b;
}

constexpr bool is_floating(scalar_type t) noexcept {
  return t == scalar_type::f64 || t == scalar_type::f32;
}

/// Invoke f.template operator()<T>() with T = the C++ type for `t`.
/// All element kernels are instantiated through this single dispatcher.
template <typename F>
decltype(auto) dispatch_type(scalar_type t, F&& f) {
  switch (t) {
    case scalar_type::f64: return f.template operator()<double>();
    case scalar_type::f32: return f.template operator()<float>();
    case scalar_type::i64: return f.template operator()<std::int64_t>();
    case scalar_type::i32: return f.template operator()<std::int32_t>();
  }
  return f.template operator()<double>();
}

/// A typed scalar value (used for scalar operands of GenOps and for the
/// results of full-matrix aggregation). Stored as both integer and double so
/// kernels can pick the lossless representation.
struct scalar_val {
  scalar_type type = scalar_type::f64;
  double d = 0.0;
  std::int64_t i = 0;

  scalar_val() = default;
  scalar_val(double v) : type(scalar_type::f64), d(v), i(static_cast<std::int64_t>(v)) {}
  scalar_val(float v) : type(scalar_type::f32), d(v), i(static_cast<std::int64_t>(v)) {}
  scalar_val(std::int64_t v) : type(scalar_type::i64), d(static_cast<double>(v)), i(v) {}
  scalar_val(std::int32_t v) : type(scalar_type::i32), d(v), i(v) {}

  template <typename T>
  T as() const {
    if constexpr (std::is_floating_point_v<T>)
      return static_cast<T>(d);
    else
      return static_cast<T>(type == scalar_type::f64 || type == scalar_type::f32
                                ? static_cast<std::int64_t>(d)
                                : i);
  }
};

/// Physical element order of a matrix within an I/O partition.
enum class matrix_layout : int { col_major = 0, row_major = 1 };

std::string shape_str(std::size_t nrow, std::size_t ncol);

}  // namespace flashr
