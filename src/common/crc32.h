// CRC-32 (IEEE 802.3 polynomial, reflected). Used for per-I/O-partition
// checksums of external-memory matrices: cheap enough to compute inline on
// the write path, strong enough to catch torn writes, injected short reads
// and on-disk corruption of a stripe file.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace flashr {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// CRC-32 of `len` bytes. Pass a previous result as `seed` to chain blocks.
inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t seed = 0) {
  const auto& table = detail::crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i)
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace flashr
