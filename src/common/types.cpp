#include "common/types.h"

namespace flashr {

std::string shape_str(std::size_t nrow, std::size_t ncol) {
  return std::to_string(nrow) + "x" + std::to_string(ncol);
}

}  // namespace flashr
