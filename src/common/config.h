// Global engine configuration. A single flashr::options instance is installed
// by flashr::init() and read through flashr::conf(). The defaults target the
// evaluation container (few cores, local disk); the paper's machine would set
// num_threads=48, stripes=24 and larger partitions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>

namespace flashr {

/// How a DAG of matrix operations is executed (the ablation axis of Fig 10).
enum class exec_mode : int {
  /// "base": every operation materializes its full output in its own pass
  /// (on SSDs when storage is external memory).
  eager = 0,
  /// Operations fused at I/O-partition granularity: one pass over SSD data,
  /// but each intermediate materializes a whole I/O partition in RAM.
  mem_fuse = 1,
  /// Default: I/O partitions split into processor-cache partitions; the DAG
  /// is evaluated depth-first one Pcache partition at a time with buffer
  /// recycling (mem-fuse + cache-fuse in the paper's terms).
  cache_fuse = 2,
};

const char* exec_mode_name(exec_mode m);

/// Per-I/O-partition CRC32 policy for external-memory matrices.
enum class checksum_policy : int {
  off = 0,     ///< no checksums (default)
  verify = 1,  ///< verify on read; mismatch raises io_error
  repair = 2,  ///< verify on read; on mismatch re-read once before failing
};

const char* checksum_policy_name(checksum_policy p);

/// Which asynchronous I/O backend services EM partition reads/writes
/// (io/io_backend.h).
enum class io_backend_kind : int {
  threads = 0,      ///< pread/pwrite thread pool (io/async_io.cpp)
  uring = 1,        ///< io_uring with registered buffers (io/uring_io.cpp);
                    ///< falls back to `threads` (with a warning) when the
                    ///< kernel lacks support
  auto_detect = 2,  ///< uring when available, else threads (silent)
};

const char* io_backend_kind_name(io_backend_kind k);

/// Where materialized matrices live.
enum class storage : int {
  in_mem = 0,   ///< FlashR-IM
  ext_mem = 1,  ///< FlashR-EM (SAFS files on "SSDs")
};

struct options {
  /// Worker threads for compute.
  int num_threads = static_cast<int>(std::thread::hardware_concurrency());
  /// Dedicated I/O threads servicing asynchronous reads/writes.
  int io_threads = 2;
  /// Rows per I/O partition; must be a power of two (paper §3.2.1).
  std::size_t io_part_rows = 16384;
  /// Target bytes per matrix for one Pcache partition; determines how many
  /// rows of an I/O partition are materialized at a time under cache_fuse.
  std::size_t pcache_bytes = 64 * 1024;
  /// Size of the fixed memory chunks backing in-memory matrices (§3.2.1).
  std::size_t mem_chunk_bytes = std::size_t{4} << 20;
  /// Directory holding SAFS backing files.
  std::string em_dir = "/tmp/flashr_em";
  /// Number of backing files an EM matrix is striped over ("SSD array").
  int stripes = 4;
  /// Bytes per stripe unit when striping EM data across backing files.
  std::size_t stripe_unit = std::size_t{1} << 20;
  /// Attempt O_DIRECT for EM I/O (falls back transparently if unsupported).
  bool direct_io = false;
  /// Emulated aggregate I/O throughput in MB/s; 0 = unthrottled. Used by
  /// benchmarks to reproduce the paper's RAM-vs-SSD gap on fast local disks.
  double io_throttle_mbps = 0.0;
  /// Execution mode for DAG materialization.
  exec_mode mode = exec_mode::cache_fuse;
  /// Simulated NUMA nodes for placement accounting (1 = UMA).
  int numa_nodes = 1;
  /// Matrices with at most this many rows are evaluated eagerly with serial
  /// kernels instead of joining a DAG (cluster centers, sink results, ...).
  std::size_t small_nrow_threshold = 4096;
  /// I/O partitions handed to a worker per dispatch at the start of a pass
  /// (§3.3: contiguous partitions read in a single asynchronous I/O).
  int dispatch_batch = 4;
  /// Read-ahead window of the shared prefetch pipeline (core/
  /// prefetch_pipeline.h): partitions with reads in flight or completed and
  /// waiting for a worker. -1 = auto (2 * io_threads * dispatch_batch);
  /// 0 = no read-ahead (workers issue reads synchronously — the ablation
  /// baseline of bench_pipeline). With simulated NUMA, each node gets its
  /// own window of this depth.
  int prefetch_depth = -1;
  /// Bounded write-behind: submit of an asynchronous partition write blocks
  /// while this many bytes of write data are queued or in flight, so a
  /// compute phase that outruns the SSDs cannot exhaust the buffer pool.
  /// 0 = unbounded. A single write larger than the budget is still admitted
  /// once the write queue is empty (the bound never deadlocks).
  std::size_t max_inflight_write_bytes = std::size_t{256} << 20;

  // --- I/O backend (io/io_backend.h, io/uring_io.cpp) ----------------------
  /// Backend servicing asynchronous EM I/O. Also set by FLASHR_IO_BACKEND=
  /// threads|uring|auto at init(). `uring` logs once and falls back to the
  /// thread pool when the kernel cannot provide a usable ring (ENOSYS,
  /// RLIMIT_MEMLOCK too small to register the pool arena).
  io_backend_kind io_backend = io_backend_kind::threads;
  /// io_uring submission-queue depth (entries; rounded up to a power of two
  /// by the kernel). Bounds the SQEs in flight, independent of the
  /// governor's inflight-partition budget.
  int uring_queue_depth = 256;
  /// Use a kernel submission-polling thread (IORING_SETUP_SQPOLL); needs a
  /// recent kernel and privileges, silently downgraded when setup fails.
  bool uring_sqpoll = false;
  /// Size of the buffer pool's contiguous registrable arena, the memory
  /// io_uring fixed-buffer reads require (mem/buffer_pool.h). Rounded down
  /// to a 4 KiB multiple; 0 disables the arena (uring then runs without
  /// READ_FIXED). Must fit RLIMIT_MEMLOCK when the uring backend registers
  /// it. Sized once, on the pool's first allocation.
  std::size_t pool_arena_bytes = std::size_t{4} << 20;

  // --- Resource governor (core/governor.h) ---------------------------------
  /// Process-wide budget of transient pass memory (pool buffers for the
  /// prefetch window, per-worker chunk state, EM output staging and the
  /// write-behind queue). A pass must reserve its estimated footprint before
  /// it starts; on failure it walks the degradation ladder (shrink
  /// prefetch_depth, shrink Pcache chunk rows, fall back to streaming eager
  /// execution) and, still over budget, fails with overload_error.
  /// 0 = unlimited (no memory admission control).
  std::size_t mem_budget_bytes = 0;
  /// Process-wide budget of in-flight partition-leaf reads. Reserved like
  /// mem_budget_bytes; a pass over budget shrinks its prefetch window.
  /// 0 = unlimited.
  std::size_t max_inflight_io = 0;
  /// When the budgets are held by other passes: false (default) queues the
  /// pass until budget frees (or its deadline fires); true fails fast with
  /// overload_error, which retry policies classify as transient.
  bool governor_fail_fast = false;
  /// Default deadline for one materialize() call, milliseconds; a pass past
  /// its deadline is cooperatively cancelled by the watchdog and surfaces
  /// timeout_error. 0 = no deadline. materialize_opts::deadline_ms
  /// overrides per call.
  std::uint64_t pass_deadline_ms = 0;
  /// Hung-I/O detection: a pass with reads in flight but no completion for
  /// this long is cancelled with timeout_error. 0 = disabled.
  std::uint64_t watchdog_stall_ms = 0;

  // --- Resilience (io/fault.h, io/safs.cpp) --------------------------------
  /// Retries for transient syscall failures (EAGAIN/EIO) before the error
  /// escalates as a typed io_error. EINTR is always retried immediately and
  /// does not count against this budget.
  int io_max_retries = 4;
  /// Initial retry backoff in microseconds; doubles per attempt with
  /// deterministic jitter in [0.5, 1.0] of the nominal delay.
  int io_retry_backoff_us = 100;
  /// Upper bound on a single backoff sleep, microseconds.
  int io_retry_backoff_cap_us = 20000;
  /// Checksum policy applied to EM partition reads/writes.
  checksum_policy io_checksum = checksum_policy::off;
  /// Deterministic fault injection (tests, resilience benches). Each
  /// probability is per syscall at the named fault site; 0 disables the
  /// site. The schedule is a pure function of (seed, site, syscall index),
  /// so a given configuration injects the same faults on every run.
  std::uint64_t fault_seed = 0x5eedULL;
  double fault_pread_prob = 0.0;    ///< pread returns -1 with fault_errno
  double fault_pwrite_prob = 0.0;   ///< pwrite returns -1 with fault_errno
  double fault_latency_prob = 0.0;  ///< syscall delayed by fault_latency_us
  double fault_short_prob = 0.0;    ///< pread hits EOF early / short pwrite
  int fault_latency_us = 200;
  /// Stall site (io/async_io.cpp): a read's completion delivery — the
  /// notify/future resolution, after the data landed — is delayed by
  /// fault_stall_us. Unlike the latency site (which delays the syscall),
  /// this models an SSD whose completions stop arriving, which is exactly
  /// what the hung-I/O watchdog (core/governor.h) monitors; tests drive the
  /// watchdog with it deterministically instead of relying on wall-clock
  /// thread scheduling.
  double fault_stall_prob = 0.0;
  int fault_stall_us = 100000;
  int fault_errno = 5;  // EIO
  /// Total faults the schedule may inject before disarming; 0 = unlimited.
  /// A finite budget makes transient-fault tests exact: retries == budget.
  std::size_t fault_max_faults = 0;

  // --- Observability (src/obs/) --------------------------------------------
  /// Collect trace events in the per-thread rings (obs/trace.h). Also
  /// enabled by a non-empty, non-"0" FLASHR_TRACE environment variable at
  /// init(); off costs one relaxed load per instrumentation site.
  bool obs_trace = false;
  /// Record the extended obs histograms (read latency, partition service
  /// time, kernel time per GenOp, window occupancy) into the metrics
  /// registry (obs/metrics.h). Legacy io_stats/pass_stats always accumulate.
  bool obs_metrics = false;
  /// Trace ring capacity per thread, in events (32 bytes each); must be a
  /// power of two. When a ring fills, the oldest events are overwritten and
  /// counted as dropped.
  std::size_t obs_ring_events = std::size_t{1} << 16;
  /// When non-empty, write the trace here automatically at process exit.
  /// FLASHR_TRACE=<path> (any value other than "0"/"1") sets this too.
  std::string obs_trace_path;
  /// Collect per-node pass profiles (obs/profile.h) for explain_analyze(),
  /// the pass-history ring and the stats server's /passes endpoint. Also
  /// enabled by a non-empty, non-"0" FLASHR_PROFILE environment variable at
  /// init(); off costs one relaxed load per materialization.
  bool obs_profile = false;
  /// Pass profiles kept in the bounded history ring (most recent N).
  std::size_t obs_profile_history = 64;
  /// When >= 0, init() serves /metrics (Prometheus text format), /healthz,
  /// /passes and /explain/last on 127.0.0.1:<port> from a background thread
  /// (obs/stats_server.h). 0 binds an ephemeral port (read it back via
  /// obs::stats_server::global().port()). Also set by FLASHR_HTTP=<port>.
  /// -1 (default) = no server.
  int obs_http_port = -1;
  /// Keep the always-on flight recorder retaining the last seconds of spans
  /// and instants per thread in small fixed rings (obs/trace.h), independent
  /// of obs_trace, so incident bundles and crash dumps always have a tail to
  /// show. Default ON (the cost is the same relaxed-load gate tracing pays
  /// plus ~64 KiB per thread); FLASHR_FLIGHT=0 disables it.
  bool obs_flight = true;
  /// Flight-recorder window included in incident bundles, seconds. The
  /// rings are bounded by capacity, not time; this only bounds how far back
  /// a bundle reaches.
  int obs_flight_secs = 30;
  /// Continuous sampling profiler (obs/sampler.h): per-thread SIGPROF
  /// timers at this frequency capture frame-pointer stacks plus the
  /// current pass/DAG-node context into lock-free rings; a collector
  /// folds them into flamegraph-ready aggregates. 0 (default) = off —
  /// every instrumentation site then costs one relaxed load. Also set by
  /// FLASHR_SAMPLE (=1 for the default 97 Hz, =<hz> for a specific rate,
  /// =<path> to additionally write folded stacks there at exit).
  int obs_sample_hz = 0;
  /// When non-empty, write the sampler's folded stacks (flamegraph.pl
  /// collapsed format) here at process exit. FLASHR_SAMPLE=<path> sets
  /// this too.
  std::string obs_sample_path;
  /// Export histograms on /metrics as native Prometheus `histogram`
  /// families with cumulative _bucket{le="..."} samples (power-of-two
  /// boundaries) instead of the default `summary` quantiles.
  bool obs_prom_buckets = false;
  /// When non-empty, append one flashr-prof-v1 profile-history record
  /// (sampler aggregates: per-node sample counts + folded stacks) here at
  /// process exit, retention-bounded like incident bundles. Also set by
  /// FLASHR_PROF_DIR. tools/bench_compare.py --attribute diffs two records
  /// to name the DAG node and stack that regressed.
  std::string obs_prof_dir;
  /// Profile-history records retained in obs_prof_dir; oldest pruned.
  int obs_prof_keep = 32;
  /// When non-empty, arm the incident subsystem (obs/incident.h): watchdog
  /// trips, governor escalations, invariant/lock-rank aborts, exhausted I/O
  /// retries and SIGUSR2 each drop a JSON post-mortem bundle here, and the
  /// crash handler dumps raw black-box state on SIGSEGV/SIGBUS/SIGABRT/
  /// SIGFPE. Also set by FLASHR_INCIDENT_DIR.
  std::string incident_dir;
  /// Incident bundles retained in incident_dir; the oldest are pruned.
  /// Crash dumps are never pruned.
  int incident_max_bundles = 16;

  void validate() const;
};

/// Install `opts` as the global configuration. Creates em_dir. Must be called
/// before matrices are created; re-initialization is allowed when no engine
/// state is live (tests do this to sweep configurations).
void init(const options& opts = options());

/// Tear down engine state (thread pools, buffer pools). Idempotent.
void shutdown();

/// Current configuration; initializes with defaults on first use.
const options& conf();

/// Whether init() has run (and shutdown() has not). Lets monitoring paths
/// (e.g. the stats server's /healthz route) read a consistent "not running"
/// answer without triggering lazy engine initialization — the serve thread
/// must never call init(), which (re)starts the stats server itself.
bool initialized();

/// Mutable access for test/bench knobs that are safe to flip between DAG
/// executions (mode, throttle, pcache size).
options& mutable_conf();

}  // namespace flashr
