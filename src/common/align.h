// Aligned allocation helpers. Direct I/O requires sector-aligned buffers;
// vectorized kernels benefit from cache-line alignment, so all engine buffers
// use 4096-byte alignment.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

namespace flashr {

inline constexpr std::size_t kBufferAlign = 4096;

inline constexpr std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) / align * align;
}

struct aligned_deleter {
  void operator()(void* p) const noexcept { std::free(p); }
};

using aligned_ptr = std::unique_ptr<char[], aligned_deleter>;

/// Allocate `bytes` rounded up to kBufferAlign, aligned to kBufferAlign.
inline aligned_ptr aligned_alloc_bytes(std::size_t bytes) {
  const std::size_t rounded = round_up(bytes == 0 ? 1 : bytes, kBufferAlign);
  void* p = std::aligned_alloc(kBufferAlign, rounded);
  if (p == nullptr) throw std::bad_alloc();
  return aligned_ptr(static_cast<char*>(p));
}

}  // namespace flashr
