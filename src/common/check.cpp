#include "common/check.h"

namespace flashr::detail {

std::atomic<bool> g_invariants{false};

}  // namespace flashr::detail
