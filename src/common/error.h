// Error handling: all recoverable failures surface as flashr::error; internal
// invariant violations use FLASHR_ASSERT which aborts with a message. Per the
// C++ Core Guidelines we throw exceptions for errors a caller can react to
// (bad shapes, I/O failures) and assert on programming errors.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace flashr {

class error : public std::runtime_error {
 public:
  explicit error(const std::string& what) : std::runtime_error(what) {}
};

/// I/O failure. The detailed constructor captures the failing file, byte
/// range and errno so callers (and the fault-injection tests) can react to
/// *where* the storage failed, not just that it did; the fields are appended
/// to what().
class io_error : public error {
 public:
  explicit io_error(const std::string& what) : error(what) {}
  io_error(const std::string& what, std::string path, std::size_t offset,
           std::size_t len, int err);

  const std::string& path() const noexcept { return path_; }
  std::size_t offset() const noexcept { return offset_; }
  std::size_t len() const noexcept { return len_; }
  /// Captured errno, or 0 when the failure is not a syscall (e.g. a
  /// checksum mismatch).
  int err() const noexcept { return err_; }

 private:
  std::string path_;
  std::size_t offset_ = 0;
  std::size_t len_ = 0;
  int err_ = 0;
};

class shape_error : public error {
 public:
  explicit shape_error(const std::string& what) : error(what) {}
};

[[noreturn]] void throw_error(const std::string& msg);
[[noreturn]] void throw_io_error(const std::string& msg);
[[noreturn]] void throw_io_error_at(const std::string& msg, std::string path,
                                    std::size_t offset, std::size_t len,
                                    int err);
[[noreturn]] void throw_shape_error(const std::string& msg);

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}

}  // namespace flashr

#define FLASHR_ASSERT(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) ::flashr::detail::assert_fail(#expr, __FILE__, __LINE__, \
                                               (msg));                   \
  } while (0)

#define FLASHR_CHECK(expr, msg)                \
  do {                                         \
    if (!(expr)) ::flashr::throw_error((msg)); \
  } while (0)

#define FLASHR_CHECK_SHAPE(expr, msg)                \
  do {                                               \
    if (!(expr)) ::flashr::throw_shape_error((msg)); \
  } while (0)
