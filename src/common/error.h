// Error handling: all recoverable failures surface as flashr::error; internal
// invariant violations use FLASHR_ASSERT which aborts with a message. Per the
// C++ Core Guidelines we throw exceptions for errors a caller can react to
// (bad shapes, I/O failures) and assert on programming errors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>

namespace flashr {

class error : public std::runtime_error {
 public:
  explicit error(const std::string& what) : std::runtime_error(what) {}

  /// Whether retrying the whole operation later may succeed without any
  /// change on the caller's side. Overload (budget contention) is transient
  /// — the contending pass will release its reservation; timeouts, I/O
  /// failures beyond the syscall retry budget and shape errors are not.
  virtual bool transient() const noexcept { return false; }
};

/// I/O failure. The detailed constructor captures the failing file, byte
/// range and errno so callers (and the fault-injection tests) can react to
/// *where* the storage failed, not just that it did; the fields are appended
/// to what().
class io_error : public error {
 public:
  explicit io_error(const std::string& what) : error(what) {}
  io_error(const std::string& what, std::string path, std::size_t offset,
           std::size_t len, int err);

  const std::string& path() const noexcept { return path_; }
  std::size_t offset() const noexcept { return offset_; }
  std::size_t len() const noexcept { return len_; }
  /// Captured errno, or 0 when the failure is not a syscall (e.g. a
  /// checksum mismatch).
  int err() const noexcept { return err_; }

 private:
  std::string path_;
  std::size_t offset_ = 0;
  std::size_t len_ = 0;
  int err_ = 0;
};

class shape_error : public error {
 public:
  explicit shape_error(const std::string& what) : error(what) {}
};

/// A pass (or its admission wait) exceeded its deadline, or the hung-I/O
/// watchdog found its reads stalled. Carries the pass id, the elapsed time
/// when the watchdog tripped, and the deadline/stall bound that was
/// exceeded, so callers and tests can tell *which* limit fired.
class timeout_error : public error {
 public:
  timeout_error(const std::string& what, std::uint64_t pass_id,
                std::uint64_t elapsed_ns, std::uint64_t limit_ms);

  std::uint64_t pass_id() const noexcept { return pass_id_; }
  std::uint64_t elapsed_ns() const noexcept { return elapsed_ns_; }
  /// The bound that fired: deadline_ms for a deadline trip or the admission
  /// wait, watchdog_stall_ms for a hung-I/O trip.
  std::uint64_t limit_ms() const noexcept { return limit_ms_; }

 private:
  std::uint64_t pass_id_ = 0;
  std::uint64_t elapsed_ns_ = 0;
  std::uint64_t limit_ms_ = 0;
};

/// The resource governor could not admit a pass: its footprint exceeds the
/// process budget even fully degraded, or (fail-fast mode) the budget is
/// held by other passes. Transient by classification — the caller may retry
/// once running passes release their reservations.
class overload_error : public error {
 public:
  overload_error(const std::string& what, std::uint64_t pass_id,
                 std::uint64_t requested, std::uint64_t budget);

  bool transient() const noexcept override { return true; }
  std::uint64_t pass_id() const noexcept { return pass_id_; }
  /// The reservation that failed and the budget it was checked against
  /// (bytes for a memory rejection, read slots for an inflight-I/O one).
  std::uint64_t requested() const noexcept { return requested_; }
  std::uint64_t budget() const noexcept { return budget_; }

 private:
  std::uint64_t pass_id_ = 0;
  std::uint64_t requested_ = 0;
  std::uint64_t budget_ = 0;
};

/// Retry/backoff classification for callers holding a caught exception:
/// true when the failure is worth retrying after a backoff (overload_error
/// and any error whose transient() override says so).
bool is_transient(const std::exception_ptr& e) noexcept;

[[noreturn]] void throw_error(const std::string& msg);
[[noreturn]] void throw_io_error(const std::string& msg);
[[noreturn]] void throw_io_error_at(const std::string& msg, std::string path,
                                    std::size_t offset, std::size_t len,
                                    int err);
[[noreturn]] void throw_shape_error(const std::string& msg);

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& msg);
}

}  // namespace flashr

#define FLASHR_ASSERT(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) ::flashr::detail::assert_fail(#expr, __FILE__, __LINE__, \
                                               (msg));                   \
  } while (0)

#define FLASHR_CHECK(expr, msg)                \
  do {                                         \
    if (!(expr)) ::flashr::throw_error((msg)); \
  } while (0)

#define FLASHR_CHECK_SHAPE(expr, msg)                \
  do {                                               \
    if (!(expr)) ::flashr::throw_shape_error((msg)); \
  } while (0)
