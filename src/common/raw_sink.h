// Async-signal-safe buffered writer over a raw fd, shared by every
// crash-path dumper (obs/crash_handler.cpp orchestrates; trace.cpp,
// log.cpp and lock_rank.cpp each dump their own section through it).
//
// Everything here is on the FLASHR_SIGNAL_SAFE path: no allocation, no
// locks, no stdio — just memcpy into a fixed buffer and ::write() to a
// pre-opened fd. The section framing it emits is the crash-dump binary
// format documented in obs/crash_handler.h; sink_tag writes one section
// header (4-byte tag + u64 payload length, little-endian).
#pragma once

#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/thread_safety.h"

namespace flashr {

struct raw_sink {
  int fd = -1;
  std::size_t n = 0;
  char buf[4096];
};

void sink_flush(raw_sink& s) noexcept FLASHR_SIGNAL_SAFE;
void sink_put(raw_sink& s, const void* p, std::size_t len) noexcept
    FLASHR_SIGNAL_SAFE;
void sink_u32(raw_sink& s, std::uint32_t v) noexcept FLASHR_SIGNAL_SAFE;
void sink_u64(raw_sink& s, std::uint64_t v) noexcept FLASHR_SIGNAL_SAFE;
/// Section header: 4-byte ASCII tag + u64 payload byte count.
void sink_tag(raw_sink& s, const char tag[4], std::uint64_t len) noexcept
    FLASHR_SIGNAL_SAFE;

inline void sink_flush(raw_sink& s) noexcept {
  std::size_t off = 0;
  while (off < s.n) {
    const ssize_t w = ::write(s.fd, s.buf + off, s.n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      break;  // dying anyway; a truncated dump beats a hang
    }
    if (w == 0) break;
    off += static_cast<std::size_t>(w);
  }
  s.n = 0;
}

inline void sink_put(raw_sink& s, const void* p, std::size_t len) noexcept {
  const char* src = static_cast<const char*>(p);
  while (len > 0) {
    if (s.n == sizeof(s.buf)) sink_flush(s);
    std::size_t k = sizeof(s.buf) - s.n;
    if (k > len) k = len;
    std::memcpy(s.buf + s.n, src, k);
    s.n += k;
    src += k;
    len -= k;
  }
}

inline void sink_u32(raw_sink& s, std::uint32_t v) noexcept {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  sink_put(s, b, 4);
}

inline void sink_u64(raw_sink& s, std::uint64_t v) noexcept {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  sink_put(s, b, 8);
}

inline void sink_tag(raw_sink& s, const char tag[4], std::uint64_t len) noexcept {
  sink_put(s, tag, 4);
  sink_u64(s, len);
}

}  // namespace flashr
