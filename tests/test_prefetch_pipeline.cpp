// Prefetch-pipeline tests: completion-order dispatch correctness, forced
// sequential fallback for cumulative DAGs, clean cancellation with a window
// of reads in flight, the bounded write-behind budget, and the per-pass
// stats surfaced by exec::last_pass_stats().
//
// Latency injection (io/fault.h) is the lever that makes completion order
// genuinely scramble: a deterministic subset of preads sleep, so later
// partitions complete before earlier ones and the completion-order pop path
// is exercised for real, not just compiled.
#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <memory>

#include "common/config.h"
#include "common/error.h"
#include "core/dense_matrix.h"
#include "core/exec.h"
#include "io/fault.h"
#include "io/safs.h"
#include "matrix/em_store.h"
#include "mem/buffer_pool.h"

namespace flashr {
namespace {

/// Overwrite every byte of a backing file with 0xFF (on-disk corruption).
void clobber_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr) << path;
  std::fseek(f, 0, SEEK_END);
  const long n = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<char> junk(static_cast<std::size_t>(n), '\xFF');
  if (!junk.empty()) {
    ASSERT_EQ(std::fwrite(junk.data(), 1, junk.size(), f), junk.size());
  }
  std::fclose(f);
}

class PrefetchPipelineTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 1000;
  static constexpr std::size_t kCols = 7;
  static constexpr std::size_t kPartRows = 64;
  static constexpr std::size_t kParts = (kN + kPartRows - 1) / kPartRows;

  void init_with(int prefetch_depth,
                 exec_mode mode = exec_mode::cache_fuse,
                 checksum_policy policy = checksum_policy::off) {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.num_threads = 4;  // several workers pulling from one shared window
    o.io_part_rows = kPartRows;
    o.pcache_bytes = 2048;
    o.small_nrow_threshold = 16;
    o.dispatch_batch = 2;
    o.prefetch_depth = prefetch_depth;
    o.mode = mode;
    o.io_checksum = policy;
    init(o);
    fault_injector::global().clear();
    io_stats::global().reset();
  }
  void TearDown() override { fault_injector::global().clear(); }

  dense_matrix make_em_input() const {
    smat h(kN, kCols);
    for (std::size_t j = 0; j < kCols; ++j)
      for (std::size_t i = 0; i < kN; ++i)
        h(i, j) = 0.5 * static_cast<double>(i) -
                  1.25 * static_cast<double>(j) + 3.0;
    return conv_store(dense_matrix::from_smat(h), storage::ext_mem);
  }

  /// Latency plan that delays a deterministic ~35% of preads by 1ms, so
  /// window completions arrive out of order while the data stays intact.
  static fault_plan scramble_plan(unsigned seed) {
    fault_plan p;
    p.seed = seed;
    p.latency_prob = 0.35;
    p.latency_us = 1000;
    return p;
  }
};

// ---------------------------------------------------------------------------
// Completion-order dispatch == sequential results, in all three exec modes
// ---------------------------------------------------------------------------

TEST_F(PrefetchPipelineTest, OutOfOrderCompletionMatchesSequentialResults) {
  const exec_mode modes[] = {exec_mode::eager, exec_mode::mem_fuse,
                             exec_mode::cache_fuse};
  const int depths[] = {0, 2, 8};
  for (exec_mode mode : modes) {
    // Reference run: strict sequential reads, no injection.
    init_with(/*prefetch_depth=*/0, mode);
    dense_matrix x = make_em_input();
    smat h = x.to_smat();
    smat want_mat = conv_store(x * 2.0 + 1.0, storage::ext_mem).to_smat();
    const double want_sum = agg(x * x - x, agg_id::sum).scalar();
    for (std::size_t j = 0; j < kCols; ++j)
      for (std::size_t i = 0; i < kN; ++i)
        ASSERT_NEAR(want_mat(i, j), h(i, j) * 2.0 + 1.0, 1e-12);

    for (int depth : depths) {
      mutable_conf().prefetch_depth = depth;
      fault_scope scope(scramble_plan(70 + static_cast<unsigned>(depth)));
      // Partition-aligned output: rows land at fixed offsets, so results
      // must be bit-for-bit regardless of completion order.
      smat got = conv_store(x * 2.0 + 1.0, storage::ext_mem).to_smat();
      for (std::size_t j = 0; j < kCols; ++j)
        for (std::size_t i = 0; i < kN; ++i)
          ASSERT_NEAR(got(i, j), want_mat(i, j), 1e-12)
              << "mode " << static_cast<int>(mode) << " depth " << depth;
      // Sink output: partition->thread assignment varies with completion
      // order, so per-thread partial sums merge in a different order —
      // identical up to f64 rounding only.
      const double got_sum = agg(x * x - x, agg_id::sum).scalar();
      EXPECT_NEAR(got_sum, want_sum, 1e-6)
          << "mode " << static_cast<int>(mode) << " depth " << depth;
    }
  }
}

// ---------------------------------------------------------------------------
// Cumulative DAGs fall back to strict sequential dispatch
// ---------------------------------------------------------------------------

TEST_F(PrefetchPipelineTest, CumulativeDagTakesSequentialPath) {
  init_with(/*prefetch_depth=*/8);
  dense_matrix x = make_em_input();
  smat h = x.to_smat();

  // Even with latency scrambling completions, a cum pass must hand out
  // partitions in order (carry chains) — and still produce exact prefixes.
  fault_scope scope(scramble_plan(75));
  smat got = cum_col(x, bop_id::add).to_smat();
  const exec::pass_stats ps = exec::last_pass_stats();
  EXPECT_GE(ps.passes, 1u);
  EXPECT_EQ(ps.sequential_passes, ps.passes)
      << "a has_cum DAG must force every pass onto the sequential path";

  for (std::size_t j = 0; j < kCols; ++j) {
    double run = 0.0;
    for (std::size_t i = 0; i < kN; ++i) {
      run += h(i, j);
      ASSERT_NEAR(got(i, j), run, 1e-9) << i << "," << j;
    }
  }

  // And a cum-free DAG over the same input must not be sequential.
  (void)agg(x, agg_id::sum).scalar();
  EXPECT_EQ(exec::last_pass_stats().sequential_passes, 0u);
}

// ---------------------------------------------------------------------------
// Cancellation with a window of reads in flight: zero buffer leak
// ---------------------------------------------------------------------------

TEST_F(PrefetchPipelineTest, MidWindowReadFailureCancelsWithPoolAtBaseline) {
  init_with(/*prefetch_depth=*/8);
  mutable_conf().io_max_retries = 0;  // first injected fault escalates
  dense_matrix x = make_em_input();

  auto& pool = buffer_pool::global();
  const std::size_t count0 = pool.outstanding_count();
  const std::size_t bytes0 = pool.outstanding_bytes();

  {
    // ~30% of preads fail hard and the rest are latency-scrambled, so the
    // failure lands mid-window: earlier reads have completed, later ones
    // are still in flight when the pass starts unwinding.
    fault_plan p;
    p.seed = 76;
    p.pread_prob = 0.30;
    p.latency_prob = 0.35;
    p.latency_us = 1000;
    fault_scope scope(p);
    try {
      conv_store(x + 1.0, storage::ext_mem).to_smat();
      FAIL() << "expected io_error";
    } catch (const io_error& e) {
      EXPECT_EQ(e.err(), EIO);
    }
  }
  // Window buffers (completed and in-flight), worker chunks, and staged
  // writes must all be back in the pool.
  EXPECT_EQ(pool.outstanding_count(), count0);
  EXPECT_EQ(pool.outstanding_bytes(), bytes0);

  // The engine stays usable: same DAG, clean run, exact results.
  mutable_conf().io_max_retries = 4;
  smat h = x.to_smat();
  smat got = conv_store(x + 1.0, storage::ext_mem).to_smat();
  for (std::size_t j = 0; j < kCols; ++j)
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_NEAR(got(i, j), h(i, j) + 1.0, 1e-12);
}

TEST_F(PrefetchPipelineTest, ChecksumFailureInsideWindowedReadPropagates) {
  init_with(/*prefetch_depth=*/8, exec_mode::cache_fuse,
            checksum_policy::verify);
  dense_matrix x = make_em_input();
  auto st = std::dynamic_pointer_cast<em_store>(x.store());
  ASSERT_NE(st, nullptr);
  ASSERT_TRUE(st->file()->has_checksums());
  for (int s = 0; s < st->file()->num_stripes(); ++s)
    clobber_file(st->file()->stripe_path(s));

  auto& pool = buffer_pool::global();
  const std::size_t count0 = pool.outstanding_count();
  const std::size_t bytes0 = pool.outstanding_bytes();
  // Verification runs inside the I/O-thread completion callback; the error
  // must surface from the worker's pop, cancel the pass, and leak nothing.
  EXPECT_THROW(agg(x, agg_id::sum).scalar(), io_error);
  EXPECT_EQ(pool.outstanding_count(), count0);
  EXPECT_EQ(pool.outstanding_bytes(), bytes0);
  EXPECT_GE(io_stats::global().checksum_failures.load(), 1u);
}

// ---------------------------------------------------------------------------
// Bounded write-behind
// ---------------------------------------------------------------------------

TEST_F(PrefetchPipelineTest, WriteBehindBudgetIsRespected) {
  init_with(/*prefetch_depth=*/4);
  dense_matrix x = make_em_input();
  const std::size_t part_bytes = kPartRows * kCols * sizeof(double);
  // Budget of exactly one partition write: at most one write may be in
  // flight, so every overlapping submit from the 4 workers must stall.
  mutable_conf().max_inflight_write_bytes = part_bytes;

  smat h = x.to_smat();
  smat got;
  {
    // Delay every pwrite so in-flight writes linger and submitters collide
    // with the budget.
    fault_plan p;
    p.seed = 77;
    p.latency_prob = 1.0;
    p.latency_us = 500;
    fault_scope scope(p);
    got = conv_store(x * 3.0 - 1.0, storage::ext_mem).to_smat();
  }
  const exec::pass_stats ps = exec::last_pass_stats();
  EXPECT_GT(ps.write_bytes, 0u);
  EXPECT_GT(ps.write_inflight_hwm, 0u);
  // The bound: never more than max(budget, one oversized write) in flight.
  EXPECT_LE(ps.write_inflight_hwm, std::max(
      conf().max_inflight_write_bytes, part_bytes));
  EXPECT_GT(ps.write_throttle_stalls, 0u);
  EXPECT_GT(ps.write_throttle_ns, 0u);

  for (std::size_t j = 0; j < kCols; ++j)
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_NEAR(got(i, j), h(i, j) * 3.0 - 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Per-pass stats and the one-pass read invariant
// ---------------------------------------------------------------------------

TEST_F(PrefetchPipelineTest, PassStatsCountEveryPartitionReadOnce) {
  init_with(/*prefetch_depth=*/4);
  dense_matrix x = make_em_input();
  io_stats::global().reset();

  (void)agg(x, agg_id::sum).scalar();
  const exec::pass_stats ps = exec::last_pass_stats();
  EXPECT_EQ(ps.passes, 1u);
  EXPECT_EQ(ps.reads_issued, kParts);  // one async read per leaf partition
  EXPECT_EQ(ps.read_bytes, kN * kCols * sizeof(double));
  EXPECT_EQ(ps.write_bytes, 0u);  // sink-only DAG writes nothing
  EXPECT_GT(ps.occupancy_x100, 0u);
  EXPECT_EQ(io_stats::global().read_ops.load(), kParts);

  // Depth 0 (synchronous baseline) keeps the same read accounting but has
  // no window to occupy.
  mutable_conf().prefetch_depth = 0;
  io_stats::global().reset();
  (void)agg(x, agg_id::sum).scalar();
  const exec::pass_stats ps0 = exec::last_pass_stats();
  EXPECT_EQ(ps0.reads_issued, kParts);
  EXPECT_EQ(ps0.occupancy_x100, 0u);
  EXPECT_EQ(io_stats::global().read_ops.load(), kParts);
}

// ---------------------------------------------------------------------------
// NUMA: per-node windows stay correct and preserve the one-pass invariant
// ---------------------------------------------------------------------------

TEST_F(PrefetchPipelineTest, PerNodeWindowsProduceExactResults) {
  init_with(/*prefetch_depth=*/4);
  mutable_conf().numa_nodes = 2;
  dense_matrix x = make_em_input();
  smat h = x.to_smat();

  io_stats::global().reset();
  fault_scope scope(scramble_plan(78));
  smat got = conv_store(x * 3.0 - 1.0, storage::ext_mem).to_smat();
  for (std::size_t j = 0; j < kCols; ++j)
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_NEAR(got(i, j), h(i, j) * 3.0 - 1.0, 1e-12);

  // Two per-node windows must still read each partition exactly once per
  // pass (one pass computes, the to_smat read-back adds one more).
  EXPECT_EQ(exec::last_pass_stats().reads_issued, kParts);

  // A cum DAG under NUMA collapses to the single sequential window.
  smat cum = cum_col(x, bop_id::add).to_smat();
  EXPECT_EQ(exec::last_pass_stats().sequential_passes,
            exec::last_pass_stats().passes);
  for (std::size_t j = 0; j < kCols; ++j) {
    double run = 0.0;
    for (std::size_t i = 0; i < kN; ++i) {
      run += h(i, j);
      ASSERT_NEAR(cum(i, j), run, 1e-9) << i << "," << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Pcache chunking honours the DAG's element size
// ---------------------------------------------------------------------------

TEST_F(PrefetchPipelineTest, PcacheRowsScaleWithElementSize) {
  init_with(/*prefetch_depth=*/-1);  // pcache_bytes = 2048 from the fixture
  // 8 columns of f64: 64 B/row -> 32 rows; f32 halves the row footprint and
  // doubles the chunk; both are clamped to the partition.
  EXPECT_EQ(exec::pcache_rows(8, 4096, 8), 32u);
  EXPECT_EQ(exec::pcache_rows(8, 4096, 4), 64u);
  // The 2-arg form keeps the historical f64 assumption.
  EXPECT_EQ(exec::pcache_rows(8, 4096), 32u);
  // Clamps: never below 16 rows, never beyond the partition.
  EXPECT_EQ(exec::pcache_rows(4096, 4096, 8), 16u);
  EXPECT_EQ(exec::pcache_rows(1, 16, 1), 16u);
}

}  // namespace
}  // namespace flashr
