// Tests for groupby.col, value-space groupby, and softmax regression.
#include <gtest/gtest.h>

#include <cmath>

#include "common/config.h"
#include "common/rng.h"
#include "core/dense_matrix.h"
#include "core/reshape.h"
#include "ml/naive_bayes.h"
#include "ml/softmax.h"

namespace flashr {
namespace {

class GroupbyColTest : public ::testing::TestWithParam<storage> {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.io_part_rows = 64;
    o.small_nrow_threshold = 16;
    init(o);
  }
  dense_matrix place(const dense_matrix& m) const {
    return conv_store(m, GetParam());
  }
};

TEST_P(GroupbyColTest, SumsColumnsByGroup) {
  const std::size_t n = 500, p = 6;
  smat h(n, p);
  rng64 rng(1);
  for (std::size_t j = 0; j < p; ++j)
    for (std::size_t i = 0; i < n; ++i) h(i, j) = rng.next_normal();
  dense_matrix m = place(dense_matrix::from_smat(h));
  // Columns {0,2,4} -> group 0; {1,3,5} -> group 1.
  smat got = groupby_col(m, {0, 1, 0, 1, 0, 1}, 2, agg_id::sum).to_smat();
  ASSERT_EQ(got.ncol(), 2u);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(got(i, 0), h(i, 0) + h(i, 2) + h(i, 4), 1e-10);
    EXPECT_NEAR(got(i, 1), h(i, 1) + h(i, 3) + h(i, 5), 1e-10);
  }
}

TEST_P(GroupbyColTest, MaxAndFusesWithChain) {
  const std::size_t n = 300;
  dense_matrix m = place(dense_matrix::rnorm(n, 4, 0, 1, 2));
  smat h = m.to_smat();
  // groupby.col of the squared matrix, fused in one DAG.
  smat got = groupby_col(square(m), {0, 0, 1, 1}, 2, agg_id::max_v).to_smat();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(got(i, 0),
                std::max(h(i, 0) * h(i, 0), h(i, 1) * h(i, 1)), 1e-10);
    EXPECT_NEAR(got(i, 1),
                std::max(h(i, 2) * h(i, 2), h(i, 3) * h(i, 3)), 1e-10);
  }
}

TEST_P(GroupbyColTest, RejectsWrongLabelCount) {
  dense_matrix m = place(dense_matrix::rnorm(100, 4, 0, 1, 3));
  EXPECT_THROW(groupby_col(m, {0, 1}, 2, agg_id::sum), shape_error);
}

TEST_P(GroupbyColTest, GroupbyValuesSumAndCount) {
  smat h(200, 1);
  for (std::size_t i = 0; i < 200; ++i) h(i, 0) = static_cast<double>(i % 4);
  dense_matrix m = place(dense_matrix::from_smat(h));
  auto sums = groupby_values(m, agg_id::sum);
  auto counts = groupby_values(m, agg_id::count_nonzero);
  ASSERT_EQ(sums.size(), 4u);
  for (std::size_t v = 0; v < 4; ++v) {
    EXPECT_EQ(sums[static_cast<double>(v)], static_cast<double>(v) * 50);
    EXPECT_EQ(counts[static_cast<double>(v)], v == 0 ? 0.0 : 50.0);
  }
  auto mins = groupby_values(m, agg_id::min_v);
  EXPECT_EQ(mins[2.0], 2.0);
}

TEST_P(GroupbyColTest, SoftmaxSeparatesThreeClasses) {
  const std::size_t n = 6000, p = 2, k = 3;
  smat h(n, p), lab(n, 1);
  rng64 rng(4);
  const double centers[3][2] = {{3, 0}, {-3, 0}, {0, 3}};
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % k;
    lab(i, 0) = static_cast<double>(c);
    h(i, 0) = centers[c][0] + rng.next_normal();
    h(i, 1) = centers[c][1] + rng.next_normal();
  }
  dense_matrix X = place(dense_matrix::from_smat(h));
  dense_matrix y = place(dense_matrix::from_smat(lab, scalar_type::i64));

  ml::softmax_options o;
  o.max_iters = 60;
  ml::softmax_model m = ml::softmax_regression(X, y, k, o);
  EXPECT_GE(m.loss_history.size(), 2u);
  EXPECT_LT(m.loss_history.back(), m.loss_history.front());
  const double acc = ml::accuracy(ml::softmax_predict(X, m), y);
  EXPECT_GT(acc, 0.93);
}

TEST_P(GroupbyColTest, SoftmaxMatchesBinaryLogisticDirection) {
  // With k = 2, softmax decision boundary ~ binary logistic's.
  const std::size_t n = 4000;
  smat h(n, 1), lab(n, 1);
  rng64 rng(5);
  for (std::size_t i = 0; i < n; ++i) {
    h(i, 0) = rng.next_normal();
    lab(i, 0) =
        rng.next_uniform() < 1 / (1 + std::exp(-2.0 * h(i, 0))) ? 1 : 0;
  }
  dense_matrix X = place(dense_matrix::from_smat(h));
  dense_matrix y = place(dense_matrix::from_smat(lab));
  ml::softmax_model m = ml::softmax_regression(X, y, 2, {.max_iters = 40});
  // w for class 1 minus class 0 approximates the binary weight 2.0.
  EXPECT_NEAR(m.w(0, 1) - m.w(0, 0), 2.0, 0.4);
  EXPECT_GT(ml::accuracy(ml::softmax_predict(X, m), y), 0.75);
}

INSTANTIATE_TEST_SUITE_P(Storages, GroupbyColTest,
                         ::testing::Values(storage::in_mem, storage::ext_mem),
                         [](const ::testing::TestParamInfo<storage>& i) {
                           return i.param == storage::in_mem ? "im" : "em";
                         });

}  // namespace
}  // namespace flashr
