// Miscellaneous edge-case coverage: type promotion, degenerate statistical
// inputs, sparse corner cases, API misuse, and mixed materialization.
#include <gtest/gtest.h>

#include <cmath>

#include "common/config.h"
#include "common/rng.h"
#include "core/dense_matrix.h"
#include "core/reshape.h"
#include "matrix/block_matrix.h"
#include "matrix/import.h"
#include "ml/logistic.h"
#include "ml/mvrnorm.h"
#include "ml/naive_bayes.h"
#include "ml/pca.h"
#include "ml/stats.h"
#include "sparse/csr.h"
#include "sparse/sem_spmm.h"

namespace flashr {
namespace {

class MiscEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.io_part_rows = 64;
    o.small_nrow_threshold = 16;
    init(o);
  }
};

// ---- Type promotion ----------------------------------------------------------

TEST_F(MiscEdgeTest, PromotionI32PlusI64GivesI64) {
  dense_matrix a = dense_matrix::constant(100, 1, 3, scalar_type::i32);
  dense_matrix b = dense_matrix::constant(100, 1, 4, scalar_type::i64);
  dense_matrix c = a + b;
  EXPECT_EQ(c.type(), scalar_type::i64);
  EXPECT_EQ(c.at(50, 0), 7.0);
}

TEST_F(MiscEdgeTest, PromotionI64TimesF32GivesF32) {
  dense_matrix a = dense_matrix::constant(100, 1, 3, scalar_type::i64);
  dense_matrix b = dense_matrix::constant(100, 1, 0.5, scalar_type::f32);
  dense_matrix c = a * b;
  EXPECT_EQ(c.type(), scalar_type::f32);
  EXPECT_NEAR(c.at(0, 0), 1.5, 1e-6);
}

TEST_F(MiscEdgeTest, IntegerDivisionPromotesToDouble) {
  dense_matrix a = dense_matrix::constant(100, 1, 7, scalar_type::i64);
  dense_matrix b = dense_matrix::constant(100, 1, 2, scalar_type::i64);
  dense_matrix c = a / b;
  EXPECT_EQ(c.type(), scalar_type::f64);
  EXPECT_EQ(c.at(0, 0), 3.5);
}

TEST_F(MiscEdgeTest, CbindPromotesToCommonType) {
  dense_matrix a = dense_matrix::constant(100, 1, 1, scalar_type::i32);
  dense_matrix b = dense_matrix::constant(100, 1, 2.5, scalar_type::f64);
  dense_matrix c = cbind({a, b});
  EXPECT_EQ(c.type(), scalar_type::f64);
  EXPECT_EQ(c.at(0, 0), 1.0);
  EXPECT_EQ(c.at(0, 1), 2.5);
}

// ---- Degenerate statistics -----------------------------------------------------

TEST_F(MiscEdgeTest, CorrelationOfConstantColumnIsZeroOffDiagonal) {
  smat h(500, 2);
  rng64 rng(1);
  for (std::size_t i = 0; i < 500; ++i) {
    h(i, 0) = rng.next_normal();
    h(i, 1) = 42.0;  // zero variance
  }
  smat cor = ml::correlation(dense_matrix::from_smat(h));
  EXPECT_NEAR(cor(0, 0), 1.0, 1e-12);
  EXPECT_EQ(cor(0, 1), 0.0);
  EXPECT_EQ(cor(1, 1), 1.0);  // convention: diagonal stays 1
}

TEST_F(MiscEdgeTest, MvrnormAcceptsRankDeficientSigma) {
  // Rank-1 covariance: samples lie on a line.
  smat sigma = smat::from_rows(2, 2, {1.0, 1.0, 1.0, 1.0});
  smat mu(1, 2);
  dense_matrix X = ml::mvrnorm(20000, mu, sigma, 3);
  smat h = X.to_smat();
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_NEAR(h(i, 0), h(i, 1), 1e-9);  // perfectly correlated
}

TEST_F(MiscEdgeTest, PcaOnPerfectlyCorrelatedData) {
  smat h(1000, 2);
  rng64 rng(2);
  for (std::size_t i = 0; i < 1000; ++i) {
    h(i, 0) = rng.next_normal();
    h(i, 1) = 2.0 * h(i, 0);
  }
  ml::pca_result fit = ml::pca(dense_matrix::from_smat(h));
  EXPECT_NEAR(fit.eigenvalues[1], 0.0, 1e-9);  // second component vanishes
  EXPECT_GT(fit.eigenvalues[0], 4.0);
}

TEST_F(MiscEdgeTest, NaiveBayesWithEmptyClass) {
  smat h(100, 2), lab(100, 1);
  rng64 rng(3);
  for (std::size_t i = 0; i < 100; ++i) {
    h(i, 0) = rng.next_normal();
    h(i, 1) = rng.next_normal();
    lab(i, 0) = 0;  // class 1 never appears
  }
  auto m = ml::naive_bayes_train(dense_matrix::from_smat(h),
                                 dense_matrix::from_smat(lab, scalar_type::i64),
                                 2);
  EXPECT_EQ(m.priors[1], 0.0);
  // Prediction still runs (empty class gets -inf-ish scores, never wins).
  auto pred = ml::naive_bayes_predict(dense_matrix::from_smat(h), m);
  EXPECT_EQ(flashr::max(pred.cast(scalar_type::f64)).scalar(), 0.0);
}

TEST_F(MiscEdgeTest, LogisticOnSeparableDataConverges) {
  smat h(400, 1), lab(400, 1);
  for (std::size_t i = 0; i < 400; ++i) {
    h(i, 0) = i < 200 ? -1.0 - 0.001 * static_cast<double>(i)
                      : 1.0 + 0.001 * static_cast<double>(i);
    lab(i, 0) = i < 200 ? 0 : 1;
  }
  ml::logistic_options o;
  o.max_iters = 50;
  o.l2 = 1e-3;  // keeps separable weights finite
  auto m = ml::logistic_regression(dense_matrix::from_smat(h),
                                   dense_matrix::from_smat(lab), o);
  EXPECT_GT(m.w(0, 0), 0.5);
  EXPECT_EQ(ml::accuracy(ml::logistic_predict(dense_matrix::from_smat(h), m),
                         dense_matrix::from_smat(lab)),
            1.0);
}

TEST_F(MiscEdgeTest, AccuracyOfIdenticalVectorsIsOne) {
  dense_matrix y = dense_matrix::bernoulli(1000, 1, 0.5, 7);
  EXPECT_EQ(ml::accuracy(y, y), 1.0);
}

TEST_F(MiscEdgeTest, LogisticProbabilitiesAreBounded) {
  smat h(300, 2);
  rng64 rng(5);
  for (std::size_t i = 0; i < 300; ++i) {
    h(i, 0) = 10 * rng.next_normal();
    h(i, 1) = 10 * rng.next_normal();
  }
  ml::logistic_model m;
  m.w = smat::from_rows(3, 1, {5.0, -5.0, 0.1});
  m.has_intercept = true;
  dense_matrix p = ml::logistic_predict_prob(dense_matrix::from_smat(h), m);
  EXPECT_GE(flashr::min(p).scalar(), 0.0);
  EXPECT_LE(flashr::max(p).scalar(), 1.0);
}

// ---- Sparse corners ----------------------------------------------------------

TEST_F(MiscEdgeTest, SparseEmptyRowsAndSemEm) {
  // Graph where half the vertices have no out-edges.
  std::vector<std::tuple<std::size_t, std::size_t, double>> trips;
  for (std::size_t v = 0; v < 100; v += 2) trips.emplace_back(v, v / 2, 1.0);
  auto g = sparse::csr_matrix::from_triplets(100, 100, std::move(trips));
  smat d(100, 2, 1.0);
  smat ref = g.spmm(d);
  auto em = sparse::em_csr::create(g, 16);
  smat got = em->spmm(d);
  EXPECT_EQ(got.max_abs_diff(ref), 0.0);
  for (std::size_t i = 1; i < 100; i += 2)
    EXPECT_EQ(got(i, 0), 0.0);  // empty rows stay zero
}

TEST_F(MiscEdgeTest, SparseSingleBlock) {
  auto g = sparse::csr_matrix::random_graph(50, 3.0, 9);
  auto em = sparse::em_csr::create(g, 4096);  // all rows in one block
  EXPECT_EQ(em->num_blocks(), 1u);
  smat d(50, 1, 2.0);
  EXPECT_EQ(em->spmm(d).max_abs_diff(g.spmm(d)), 0.0);
}

TEST_F(MiscEdgeTest, SpmmShapeMismatchThrows) {
  auto g = sparse::csr_matrix::random_graph(50, 3.0, 11);
  smat d(49, 1, 1.0);
  EXPECT_THROW(g.spmm(d), shape_error);
  auto em = sparse::em_csr::create(g, 16);
  EXPECT_THROW(em->spmm(d), shape_error);
}

// ---- API misuse & mixtures -----------------------------------------------------

TEST_F(MiscEdgeTest, BlockMatrixRejectsMixedHeights) {
  std::vector<dense_matrix> blocks{dense_matrix::rnorm(100, 2, 0, 1, 1),
                                   dense_matrix::rnorm(200, 2, 0, 1, 2)};
  EXPECT_THROW(block_matrix bm(std::move(blocks)), shape_error);
}

TEST_F(MiscEdgeTest, PcaTransformDimensionMismatch) {
  ml::pca_result fit = ml::pca(dense_matrix::rnorm(500, 4, 0, 1, 3));
  EXPECT_THROW(ml::pca_transform(dense_matrix::rnorm(500, 5, 0, 1, 4), fit),
               shape_error);
}

TEST_F(MiscEdgeTest, MaterializeAllMixedPendingAndDone) {
  dense_matrix a = dense_matrix::rnorm(300, 2, 0, 1, 5) * 2.0;
  a.materialize();
  dense_matrix b = sum(a);
  dense_matrix c = col_sums(a * 3.0);
  EXPECT_NO_THROW(materialize_all({a, b, c}));
  EXPECT_NEAR(c.to_smat()(0, 0), 3.0 * col_sums(a).to_smat()(0, 0), 1e-8);
}

TEST_F(MiscEdgeTest, LoadMatrixMissingThrows) {
  EXPECT_THROW(load_matrix(conf().em_dir, "no_such_matrix"), io_error);
}

TEST_F(MiscEdgeTest, RbindTypePromotion) {
  dense_matrix a = dense_matrix::constant(50, 2, 1, scalar_type::i32);
  dense_matrix b = dense_matrix::constant(50, 2, 2.5, scalar_type::f64);
  dense_matrix c = rbind({a, b});
  EXPECT_EQ(c.type(), scalar_type::f64);
  EXPECT_EQ(c.at(0, 0), 1.0);
  EXPECT_EQ(c.at(50, 0), 2.5);
}

}  // namespace
}  // namespace flashr
