// Tests for NUMA-aware dispatch and set.cache storage placement.
#include <gtest/gtest.h>

#include <set>

#include "common/config.h"
#include "core/dense_matrix.h"
#include "core/virtual_store.h"
#include "io/safs.h"
#include "mem/numa.h"
#include "parallel/scheduler.h"
#include "parallel/thread_pool.h"

namespace flashr {
namespace {

TEST(NumaScheduler, CoversAllPartitionsOnce) {
  numa_scheduler sched(1003, 4);
  std::set<std::size_t> seen;
  std::size_t p;
  for (int home = 0; home < 4; ++home)
    while (sched.fetch(home % 4, p)) EXPECT_TRUE(seen.insert(p).second);
  EXPECT_EQ(seen.size(), 1003u);
}

TEST(NumaScheduler, HomeQueueFirstThenSteal) {
  numa_scheduler sched(12, 3);
  // Worker on node 1 should first get 1, 4, 7, 10 in order, then steal.
  std::size_t p;
  bool stolen = false;
  for (std::size_t expect : {1u, 4u, 7u, 10u}) {
    ASSERT_TRUE(sched.fetch(1, p, &stolen));
    EXPECT_EQ(p, expect);
    EXPECT_FALSE(stolen);
  }
  ASSERT_TRUE(sched.fetch(1, p, &stolen));
  EXPECT_TRUE(stolen);
  EXPECT_EQ(p % 3, 2u);  // steals from the next node (1+1) % 3
}

TEST(NumaScheduler, ParallelFetchIsExactlyOnce) {
  numa_scheduler sched(5000, 2);
  std::vector<std::set<std::size_t>> per_thread(4);
  thread_pool pool(4);
  pool.run_all([&](int t) {
    std::size_t p;
    while (sched.fetch(t % 2, p))
      per_thread[static_cast<std::size_t>(t)].insert(p);
  });
  std::set<std::size_t> all;
  std::size_t total = 0;
  for (auto& s : per_thread) {
    total += s.size();
    all.insert(s.begin(), s.end());
  }
  EXPECT_EQ(total, 5000u);
  EXPECT_EQ(all.size(), 5000u);
}

class NumaExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.io_part_rows = 64;
    o.num_threads = 4;
    o.numa_nodes = 4;
    o.small_nrow_threshold = 16;
    init(o);
  }
  void TearDown() override { mutable_conf().numa_nodes = 1; }
};

TEST_F(NumaExecTest, NumaDispatchIsCorrectAndRecordsAccesses) {
  // Correctness under per-node queues. Locality itself cannot be asserted
  // end-to-end here: with a single hardware core, whichever software thread
  // runs first legitimately steals most remote partitions (the tracker then
  // reports ~1/nodes). The dispatch ORDER policy is pinned by the
  // deterministic NumaScheduler.HomeQueueFirstThenSteal test above.
  dense_matrix X = conv_store(dense_matrix::rnorm(64 * 64, 4, 0, 1, 3),
                              storage::in_mem);
  numa_tracker::global().reset();
  const double s = sum(X * 2.0).scalar();
  const double expect = 2.0 * sum(X).scalar();
  EXPECT_NEAR(s, expect, std::abs(expect) * 1e-12);
  EXPECT_GT(numa_tracker::global().local_accesses() +
                numa_tracker::global().remote_accesses(),
            0u);
  EXPECT_GE(numa_tracker::global().locality(), 0.25 - 1e-9);
}

TEST_F(NumaExecTest, SingleThreadStealsEverythingButStaysCorrect) {
  mutable_conf().num_threads = 1;
  dense_matrix X = conv_store(dense_matrix::rnorm(64 * 8, 3, 0, 1, 5),
                              storage::in_mem);
  smat got = (X + 1.0).to_smat();
  smat h = X.to_smat();
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_NEAR(got(i, 0), h(i, 0) + 1.0, 1e-12);
  mutable_conf().num_threads = 4;
}

TEST_F(NumaExecTest, CumulativeOpsFallBackToSequentialDispatch) {
  // cum ops would deadlock under per-node queues with one worker; the
  // engine must fall back and still be correct.
  mutable_conf().num_threads = 1;
  dense_matrix X = conv_store(dense_matrix::rnorm(64 * 6, 2, 0, 1, 7),
                              storage::in_mem);
  smat got = cumsum_col(X).to_smat();
  smat h = X.to_smat();
  double run = 0;
  for (std::size_t i = 0; i < X.nrow(); ++i) {
    run += h(i, 0);
    ASSERT_NEAR(got(i, 0), run, 1e-8);
  }
  mutable_conf().num_threads = 4;
}

class CacheStorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.io_part_rows = 64;
    o.small_nrow_threshold = 16;
    init(o);
  }
};

TEST_F(CacheStorageTest, SetCacheToSsdMaterializesThere) {
  dense_matrix X = conv_store(dense_matrix::rnorm(64 * 8, 2, 0, 1, 9),
                              storage::ext_mem);
  dense_matrix mid = X * 3.0;
  mid.set_cache(true, storage::ext_mem);
  const double total = sum(mid).scalar();
  // mid is now materialized... on SSDs.
  ASSERT_FALSE(mid.is_virtual());
  EXPECT_EQ(mid.resolved()->kind(), store_kind::ext);
  // And reusable without recomputing from X.
  EXPECT_NEAR(sum(mid).scalar(), total, 1e-9);
}

TEST_F(CacheStorageTest, SetCacheToMemoryDefault) {
  dense_matrix X = conv_store(dense_matrix::rnorm(64 * 4, 2, 0, 1, 9),
                              storage::ext_mem);
  dense_matrix mid = X + 1.0;
  mid.set_cache(true);
  sum(mid).scalar();
  ASSERT_FALSE(mid.is_virtual());
  EXPECT_EQ(mid.resolved()->kind(), store_kind::mem);
}

TEST_F(CacheStorageTest, RequestedTargetHonoursCallerStorage) {
  dense_matrix X = conv_store(dense_matrix::rnorm(64 * 4, 2, 0, 1, 9),
                              storage::in_mem);
  dense_matrix y = X * 2.0;
  materialize_all({y}, storage::ext_mem);
  EXPECT_EQ(y.resolved()->kind(), store_kind::ext);
}

}  // namespace
}  // namespace flashr
