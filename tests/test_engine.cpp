// Engine tests: GenOps, lazy evaluation, DAG materialization.
//
// The central property (DESIGN.md invariant 1) is differential: every
// operation must produce identical results under all exec modes (eager,
// mem-fuse, cache-fuse) and both storages (RAM, SSDs), for inputs that span
// multiple I/O partitions and ragged final partitions. The parameterized
// fixture sweeps that matrix of configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/config.h"
#include "core/dense_matrix.h"
#include "core/exec.h"
#include "io/safs.h"
#include "matrix/generated_store.h"
#include "mem/numa.h"

namespace flashr {
namespace {

struct engine_param {
  exec_mode mode;
  storage st;
};

std::string param_name(const ::testing::TestParamInfo<engine_param>& info) {
  std::string s = exec_mode_name(info.param.mode);
  for (auto& c : s)
    if (c == '-') c = '_';
  return s + (info.param.st == storage::ext_mem ? "_em" : "_im");
}

class EngineTest : public ::testing::TestWithParam<engine_param> {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.num_threads = 4;
    o.io_part_rows = 64;        // force many partitions at small n
    o.pcache_bytes = 2048;      // force several Pcache chunks per partition
    o.small_nrow_threshold = 16;
    o.mode = GetParam().mode;
    o.dispatch_batch = 2;
    init(o);
  }

  storage st() const { return GetParam().st; }

  /// Test input: n x p matrix with a deterministic pattern including
  /// negatives and non-integers, placed in the parameterized storage.
  dense_matrix make_input(std::size_t n, std::size_t p,
                          double scale = 1.0) const {
    smat h(n, p);
    for (std::size_t j = 0; j < p; ++j)
      for (std::size_t i = 0; i < n; ++i)
        h(i, j) = scale * (std::sin(static_cast<double>(i * p + j)) +
                           0.25 * static_cast<double>(j) -
                           0.001 * static_cast<double>(i));
    dense_matrix m = dense_matrix::from_smat(h);
    return st() == storage::ext_mem ? conv_store(m, storage::ext_mem) : m;
  }

  smat host_of(const dense_matrix& m) const { return m.to_smat(); }
};

constexpr std::size_t kN = 1000;  // ~16 partitions of 64 rows + ragged tail
constexpr std::size_t kP = 7;

TEST_P(EngineTest, SapplyMatchesHost) {
  dense_matrix x = make_input(kN, kP);
  smat h = host_of(x);
  smat got = flashr::sqrt(abs(x)).to_smat();
  for (std::size_t j = 0; j < kP; ++j)
    for (std::size_t i = 0; i < kN; ++i)
      EXPECT_NEAR(got(i, j), std::sqrt(std::abs(h(i, j))), 1e-12);
}

TEST_P(EngineTest, MapplyAddSubMulDiv) {
  dense_matrix x = make_input(kN, kP), y = make_input(kN, kP, 0.5);
  smat hx = host_of(x), hy = host_of(y);
  smat add = (x + y).to_smat(), sub = (x - y).to_smat(),
       mul = (x * y).to_smat(), div = (x / (y + 10.0)).to_smat();
  for (std::size_t j = 0; j < kP; ++j)
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_NEAR(add(i, j), hx(i, j) + hy(i, j), 1e-12);
      EXPECT_NEAR(sub(i, j), hx(i, j) - hy(i, j), 1e-12);
      EXPECT_NEAR(mul(i, j), hx(i, j) * hy(i, j), 1e-12);
      EXPECT_NEAR(div(i, j), hx(i, j) / (hy(i, j) + 10.0), 1e-12);
    }
}

TEST_P(EngineTest, ScalarOpsBothSides) {
  dense_matrix x = make_input(kN, 3);
  smat h = host_of(x);
  smat a = (x * 2.0 + 1.0).to_smat();
  smat b = (10.0 - x).to_smat();
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_NEAR(a(i, j), h(i, j) * 2 + 1, 1e-12);
      EXPECT_NEAR(b(i, j), 10.0 - h(i, j), 1e-12);
    }
}

TEST_P(EngineTest, ColumnBroadcast) {
  dense_matrix x = make_input(kN, kP);
  dense_matrix v = make_input(kN, 1);
  smat hx = host_of(x), hv = host_of(v);
  smat got = (x * v).to_smat();  // n x 1 recycled across columns
  for (std::size_t j = 0; j < kP; ++j)
    for (std::size_t i = 0; i < kN; ++i)
      EXPECT_NEAR(got(i, j), hx(i, j) * hv(i, 0), 1e-12);
}

TEST_P(EngineTest, FusedChainSingleMaterialization) {
  dense_matrix x = make_input(kN, kP);
  smat h = host_of(x);
  // A deep chain: ((x^2 + 1) * 0.5 - x).abs().sqrt()
  dense_matrix z = flashr::sqrt(abs((square(x) + 1.0) * 0.5 - x));
  smat got = z.to_smat();
  for (std::size_t j = 0; j < kP; ++j)
    for (std::size_t i = 0; i < kN; ++i) {
      const double e =
          std::sqrt(std::abs((h(i, j) * h(i, j) + 1) * 0.5 - h(i, j)));
      EXPECT_NEAR(got(i, j), e, 1e-12);
    }
}

TEST_P(EngineTest, SharedSubexpressionDiamond) {
  dense_matrix x = make_input(kN, 4);
  smat h = host_of(x);
  dense_matrix c = square(x);     // shared by two consumers
  dense_matrix z = c + c * 2.0;   // diamond DAG
  smat got = z.to_smat();
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < kN; ++i)
      EXPECT_NEAR(got(i, j), 3 * h(i, j) * h(i, j), 1e-12);
}

TEST_P(EngineTest, AggFullSumMinMax) {
  dense_matrix x = make_input(kN, kP);
  smat h = host_of(x);
  double esum = 0, emin = 1e300, emax = -1e300;
  for (std::size_t j = 0; j < kP; ++j)
    for (std::size_t i = 0; i < kN; ++i) {
      esum += h(i, j);
      emin = std::min(emin, h(i, j));
      emax = std::max(emax, h(i, j));
    }
  EXPECT_NEAR(sum(x).scalar(), esum, 1e-8);
  EXPECT_NEAR(flashr::min(x).scalar(), emin, 1e-12);
  EXPECT_NEAR(flashr::max(x).scalar(), emax, 1e-12);
}

TEST_P(EngineTest, AggAnyAllCount) {
  dense_matrix pos = gt(make_input(kN, 2), make_input(kN, 2, 2.0));
  smat h = pos.to_smat();
  double nnz = 0;
  for (std::size_t j = 0; j < 2; ++j)
    for (std::size_t i = 0; i < kN; ++i) nnz += h(i, j) != 0 ? 1 : 0;
  EXPECT_NEAR(agg(pos, agg_id::count_nonzero).scalar(), nnz, 0);
  EXPECT_EQ(any(pos).scalar(), nnz > 0 ? 1 : 0);
  EXPECT_EQ(all(pos).scalar(), nnz == 2 * kN ? 1 : 0);
}

TEST_P(EngineTest, RowAndColSums) {
  dense_matrix x = make_input(kN, kP);
  smat h = host_of(x);
  smat rs = row_sums(x).to_smat();
  smat cs = col_sums(x).to_smat();
  ASSERT_EQ(rs.nrow(), kN);
  ASSERT_EQ(cs.ncol(), kP);
  for (std::size_t i = 0; i < kN; ++i) {
    double e = 0;
    for (std::size_t j = 0; j < kP; ++j) e += h(i, j);
    EXPECT_NEAR(rs(i, 0), e, 1e-10);
  }
  for (std::size_t j = 0; j < kP; ++j) {
    double e = 0;
    for (std::size_t i = 0; i < kN; ++i) e += h(i, j);
    EXPECT_NEAR(cs(0, j), e, 1e-8);
  }
}

TEST_P(EngineTest, AggRowMinAndWhichMin) {
  dense_matrix x = make_input(kN, kP);
  smat h = host_of(x);
  smat rmin = agg_row(x, agg_id::min_v).to_smat();
  smat amin = which_min_row(x).to_smat();
  for (std::size_t i = 0; i < kN; ++i) {
    double e = h(i, 0);
    std::size_t arg = 0;
    for (std::size_t j = 1; j < kP; ++j)
      if (h(i, j) < e) {
        e = h(i, j);
        arg = j;
      }
    EXPECT_NEAR(rmin(i, 0), e, 1e-12);
    EXPECT_EQ(amin(i, 0), static_cast<double>(arg));
  }
}

TEST_P(EngineTest, SweepColsSubtractMeans) {
  dense_matrix x = make_input(kN, kP);
  smat h = host_of(x);
  smat mu = col_means(x).to_smat();
  dense_matrix centered = sweep_cols(x, mu, bop_id::sub);
  smat cs = col_sums(centered).to_smat();
  for (std::size_t j = 0; j < kP; ++j) EXPECT_NEAR(cs(0, j), 0.0, 1e-7);
}

TEST_P(EngineTest, InnerProdMatchesGemm) {
  dense_matrix x = make_input(kN, kP);
  smat h = host_of(x);
  smat b(kP, 3);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < kP; ++i)
      b(i, j) = 0.1 * static_cast<double>(i + 1) * static_cast<double>(j + 1);
  smat got = matmul(x, dense_matrix::from_smat(b)).to_smat();
  smat expect = h.mm(b);
  EXPECT_LT(got.max_abs_diff(expect), 1e-9);
}

TEST_P(EngineTest, InnerProdEuclidean) {
  dense_matrix x = make_input(kN, kP);
  smat h = host_of(x);
  smat c(kP, 2);  // two "centers" as columns
  for (std::size_t i = 0; i < kP; ++i) {
    c(i, 0) = 0.3;
    c(i, 1) = -0.2 * static_cast<double>(i);
  }
  smat got = inner_prod(x, c, bop_id::sqdiff, agg_id::sum).to_smat();
  for (std::size_t i = 0; i < kN; ++i)
    for (std::size_t j = 0; j < 2; ++j) {
      double e = 0;
      for (std::size_t q = 0; q < kP; ++q) {
        const double d = h(i, q) - c(q, j);
        e += d * d;
      }
      EXPECT_NEAR(got(i, j), e, 1e-9);
    }
}

TEST_P(EngineTest, CrossprodMatchesHost) {
  dense_matrix x = make_input(kN, kP);
  smat h = host_of(x);
  smat got = crossprod(x).to_smat();
  smat expect = h.crossprod(h);
  EXPECT_LT(got.max_abs_diff(expect), 1e-7);
}

TEST_P(EngineTest, CrossprodTwoMatrices) {
  dense_matrix x = make_input(kN, kP), y = make_input(kN, 3, 0.7);
  smat got = crossprod(x, y).to_smat();
  smat expect = host_of(x).crossprod(host_of(y));
  EXPECT_LT(got.max_abs_diff(expect), 1e-7);
}

TEST_P(EngineTest, TransposedMatmulOfVirtual) {
  // t(virtual) %*% virtual must fuse into one sink.
  dense_matrix x = make_input(kN, kP);
  dense_matrix cx = x * 2.0;
  smat got = matmul(cx.t(), cx).to_smat();
  smat h = host_of(x) * 2.0;
  EXPECT_LT(got.max_abs_diff(h.crossprod(h)), 1e-6);
}

TEST_P(EngineTest, GroupbyRowAndCounts) {
  dense_matrix x = make_input(kN, kP);
  smat h = host_of(x);
  // Labels 0..4 from the row index.
  const std::size_t k = 5;
  smat lab_host(kN, 1);
  for (std::size_t i = 0; i < kN; ++i)
    lab_host(i, 0) = static_cast<double>(i % k);
  dense_matrix labels = dense_matrix::from_smat(lab_host, scalar_type::i64);
  if (st() == storage::ext_mem) labels = conv_store(labels, storage::ext_mem);

  smat sums = groupby_row(x, labels, k, agg_id::sum).to_smat();
  smat counts = count_groups(labels, k).to_smat();
  smat esums(k, kP);
  std::vector<double> ecounts(k, 0);
  for (std::size_t i = 0; i < kN; ++i) {
    const std::size_t g = i % k;
    ecounts[g] += 1;
    for (std::size_t j = 0; j < kP; ++j) esums(g, j) += h(i, j);
  }
  for (std::size_t g = 0; g < k; ++g) {
    EXPECT_EQ(counts(g, 0), ecounts[g]);
    for (std::size_t j = 0; j < kP; ++j)
      EXPECT_NEAR(sums(g, j), esums(g, j), 1e-8);
  }
}

TEST_P(EngineTest, CumsumColMatchesSerialPrefix) {
  dense_matrix x = make_input(kN, 3);
  smat h = host_of(x);
  smat got = cumsum_col(x).to_smat();
  for (std::size_t j = 0; j < 3; ++j) {
    double run = 0;
    for (std::size_t i = 0; i < kN; ++i) {
      run += h(i, j);
      EXPECT_NEAR(got(i, j), run, 1e-8) << "at (" << i << "," << j << ")";
    }
  }
}

TEST_P(EngineTest, CummaxColAndCumRow) {
  dense_matrix x = make_input(kN, 4);
  smat h = host_of(x);
  smat cmax = cummax_col(x).to_smat();
  smat crow = cum_row(x, bop_id::add).to_smat();
  for (std::size_t j = 0; j < 4; ++j) {
    double run = h(0, j);
    for (std::size_t i = 0; i < kN; ++i) {
      run = std::max(run, h(i, j));
      EXPECT_NEAR(cmax(i, j), run, 1e-12);
    }
  }
  for (std::size_t i = 0; i < kN; ++i) {
    double run = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      run += h(i, j);
      EXPECT_NEAR(crow(i, j), run, 1e-10);
    }
  }
}

TEST_P(EngineTest, NestedCumsum) {
  dense_matrix x = make_input(300, 2);
  smat h = host_of(x);
  smat got = cumsum_col(cumsum_col(x)).to_smat();
  for (std::size_t j = 0; j < 2; ++j) {
    double run1 = 0, run2 = 0;
    for (std::size_t i = 0; i < 300; ++i) {
      run1 += h(i, j);
      run2 += run1;
      EXPECT_NEAR(got(i, j), run2, 1e-7);
    }
  }
}

TEST_P(EngineTest, SelectColsAndCbind) {
  dense_matrix x = make_input(kN, kP);
  smat h = host_of(x);
  dense_matrix sel = select_cols(x, {2, 0, 5});
  smat hsel = sel.to_smat();
  ASSERT_EQ(hsel.ncol(), 3u);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hsel(i, 0), h(i, 2));
    EXPECT_EQ(hsel(i, 1), h(i, 0));
    EXPECT_EQ(hsel(i, 2), h(i, 5));
  }
  dense_matrix joined = cbind({sel, x});
  smat hj = joined.to_smat();
  ASSERT_EQ(hj.ncol(), 3 + kP);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hj(i, 0), h(i, 2));
    EXPECT_EQ(hj(i, 3), h(i, 0));
  }
}

TEST_P(EngineTest, CastRoundTrip) {
  dense_matrix x = make_input(kN, 2, 10.0);
  smat h = host_of(x);
  smat got = x.cast(scalar_type::i32).cast(scalar_type::f64).to_smat();
  for (std::size_t j = 0; j < 2; ++j)
    for (std::size_t i = 0; i < kN; ++i)
      EXPECT_EQ(got(i, j), std::trunc(h(i, j)));
}

TEST_P(EngineTest, IntegerMatmulViaGenOps) {
  // Table 2: integer %*% uses inner.prod(*, +) rather than BLAS.
  smat hi(200, 3);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 200; ++i)
      hi(i, j) = static_cast<double>((i * 7 + j * 3) % 11) - 5;
  dense_matrix x = dense_matrix::from_smat(hi, scalar_type::i64);
  if (st() == storage::ext_mem) x = conv_store(x, storage::ext_mem);
  smat b = smat::from_rows(3, 2, {1, -2, 3, 0, -1, 4});
  smat got = inner_prod(x, b, bop_id::mul, agg_id::sum).to_smat();
  EXPECT_EQ(got.max_abs_diff(hi.mm(b)), 0.0);
  smat g2 = crossprod(x).to_smat();
  EXPECT_EQ(g2.max_abs_diff(hi.crossprod(hi)), 0.0);
}

TEST_P(EngineTest, MaterializeAllFusesSinks) {
  dense_matrix x = make_input(kN, kP);
  dense_matrix s1 = sum(x);
  dense_matrix s2 = col_sums(x);
  dense_matrix g = crossprod(x);
  io_stats::global().reset();
  materialize_all({s1, s2, g});
  if (st() == storage::ext_mem && conf().mode != exec_mode::eager) {
    // One pass: the EM leaf is read exactly once even with 3 sinks.
    const std::size_t parts = (kN + 63) / 64;
    EXPECT_EQ(io_stats::global().read_ops.load(), parts);
  }
  smat h = host_of(x);
  EXPECT_NEAR(s2.to_smat()(0, 1), col_sums(x).to_smat()(0, 1), 1e-9);
  EXPECT_LT(g.to_smat().max_abs_diff(h.crossprod(h)), 1e-7);
}

TEST_P(EngineTest, SetCacheKeepsIntermediate) {
  dense_matrix x = make_input(kN, 2);
  dense_matrix mid = x * 3.0;
  mid.set_cache(true);
  dense_matrix total = sum(mid);
  const double v = total.scalar();
  // mid must now be materialized; reusing it must not recompute from x.
  EXPECT_FALSE(mid.is_virtual());
  EXPECT_NEAR(sum(mid).scalar(), v, 1e-8);
}

TEST_P(EngineTest, TallOutputToRequestedStorage) {
  dense_matrix x = make_input(kN, 3);
  dense_matrix y = x + 1.0;
  y.materialize(st());
  smat h = host_of(x);
  smat got = y.to_smat();
  for (std::size_t i = 0; i < kN; ++i)
    EXPECT_NEAR(got(i, 0), h(i, 0) + 1.0, 1e-12);
}

TEST_P(EngineTest, GeneratedLeavesInsideDag) {
  dense_matrix r = dense_matrix::runif(kN, 3, -1, 1, /*seed=*/7);
  dense_matrix z = r * r;  // same leaf twice
  smat got = z.to_smat();
  smat rh = r.to_smat();
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_NEAR(got(i, j), rh(i, j) * rh(i, j), 1e-12);
      EXPECT_GE(rh(i, j), -1);
      EXPECT_LT(rh(i, j), 1);
    }
}

TEST_P(EngineTest, RaggedLastPartition) {
  // n chosen to leave a 1-row final partition.
  const std::size_t n = 64 * 3 + 1;
  dense_matrix x = make_input(n, 2);
  smat h = host_of(x);
  EXPECT_NEAR(sum(x).scalar(),
              std::accumulate(h.data(), h.data() + h.size(), 0.0), 1e-9);
  smat got = (x * 2.0).to_smat();
  EXPECT_NEAR(got(n - 1, 1), h(n - 1, 1) * 2, 1e-12);
}

TEST_P(EngineTest, SingleRowMatrix) {
  dense_matrix x = make_input(1, 4);
  smat h = host_of(x);
  EXPECT_NEAR(sum(x).scalar(), h(0, 0) + h(0, 1) + h(0, 2) + h(0, 3), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, EngineTest,
    ::testing::Values(engine_param{exec_mode::eager, storage::in_mem},
                      engine_param{exec_mode::eager, storage::ext_mem},
                      engine_param{exec_mode::mem_fuse, storage::in_mem},
                      engine_param{exec_mode::mem_fuse, storage::ext_mem},
                      engine_param{exec_mode::cache_fuse, storage::in_mem},
                      engine_param{exec_mode::cache_fuse, storage::ext_mem}),
    param_name);

}  // namespace
}  // namespace flashr
