// Sampling-profiler tests (src/obs/sampler.*, prof_store.*, the new stats
// server routes and the native Prometheus histogram export): zero-cost-off
// gating, folded-stack shape, wait-state attribution, the explain_analyze
// sampled-self-time join (coverage of measured kernel time on one thread),
// flashr-prof-v1 store round trip with traversal rejection, and concurrent
// live-socket scrapes of /debug/pprof/profile while passes run (TSan gate).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/timer.h"
#include "core/dense_matrix.h"
#include "core/exec.h"
#include "obs/metrics.h"
#include "obs/prof_store.h"
#include "obs/profile.h"
#include "obs/sampler.h"
#include "obs/stats_server.h"

namespace flashr {
namespace {

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define FLASHR_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define FLASHR_TEST_SANITIZED 1
#endif
#endif

options sampler_options() {
  options o;
  o.em_dir = "/tmp/flashr_test_sampler";
  o.num_threads = 2;
  o.io_part_rows = 1024;
  o.pcache_bytes = 4096;
  o.small_nrow_threshold = 16;
  return o;
}

/// Leave the process exactly as a fresh test expects it: sampler stopped,
/// aggregates dropped, store disarmed.
void sampler_reset() {
  obs::sampler_stop();
  obs::sampler_clear();
  obs::prof_store_disarm();
}

/// Burn CPU until `ms` of wall time passed (keeps the thread on-CPU so
/// wall-clock samples land in state cpu).
void spin_ms(std::uint64_t ms) {
  const std::uint64_t t0 = now_ns();
  volatile double sink = 1.0;
  while (now_ns() - t0 < ms * 1000000ull) {
    for (int i = 0; i < 4096; ++i) sink = sink * 1.0000001 + 1e-9;
  }
}

/// Split folded text into non-empty lines.
std::vector<std::string> folded_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    if (eol > pos) lines.push_back(text.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return lines;
}

/// "track;state;frames... count" — positive trailing count, >= 2 frames.
void expect_well_formed(const std::string& line) {
  const std::size_t sp = line.rfind(' ');
  ASSERT_NE(sp, std::string::npos) << line;
  ASSERT_LT(sp + 1, line.size()) << line;
  for (std::size_t i = sp + 1; i < line.size(); ++i)
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(line[i]))) << line;
  EXPECT_GT(std::strtoull(line.c_str() + sp + 1, nullptr, 10), 0u) << line;
  const std::string head = line.substr(0, sp);
  EXPECT_NE(head.find(';'), std::string::npos)
      << "no track;state separator: " << line;
}

std::uint64_t find_u64(const std::string& json, const std::string& key,
                       std::size_t from = 0) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t pos = json.find(needle, from);
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

std::uint64_t sum_u64(const std::string& json, const std::string& key,
                      std::size_t from) {
  const std::string needle = "\"" + key + "\": ";
  std::uint64_t total = 0;
  for (std::size_t pos = json.find(needle, from); pos != std::string::npos;
       pos = json.find(needle, pos + 1))
    total += std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
  return total;
}

// ---------------------------------------------------------------------------
// Core sampler
// ---------------------------------------------------------------------------

TEST(Sampler, OffByDefaultCostsNothing) {
  sampler_reset();
  EXPECT_FALSE(obs::sampler_on());
  // Scopes are inert while off: no context mutation, no samples.
  {
    obs::sample_node_scope node(7);
    obs::sample_pass_scope pass(obs::sampler_new_pass());
    obs::sample_wait_scope wait(obs::sample_state::io_wait);
    spin_ms(5);
  }
  const obs::sampler_counters c = obs::sampler_stats();
  EXPECT_EQ(c.hz, 0u);
  EXPECT_EQ(c.samples, 0u);
  EXPECT_TRUE(obs::folded_stacks().empty());
  EXPECT_TRUE(obs::sampler_pass_samples(0, nullptr).empty());
}

TEST(Sampler, CollectsWellFormedFoldedStacks) {
  sampler_reset();
  obs::sampler_start(997);
  ASSERT_TRUE(obs::sampler_on());
  spin_ms(300);
  obs::sampler_stop();
  EXPECT_FALSE(obs::sampler_on());

  const obs::sampler_counters c = obs::sampler_stats();
  EXPECT_GT(c.samples, 0u) << "no samples after 300ms at 997 Hz";

  const std::string folded = obs::folded_stacks();
  const std::vector<std::string> lines = folded_lines(folded);
  ASSERT_FALSE(lines.empty());
  bool saw_main_cpu = false;
  for (const std::string& line : lines) {
    expect_well_formed(line);
    if (line.rfind("main;cpu", 0) == 0) saw_main_cpu = true;
  }
  EXPECT_TRUE(saw_main_cpu)
      << "main thread spun on-CPU but no main;cpu stack:\n" << folded;
  sampler_reset();
}

TEST(Sampler, PassAndNodeAttribution) {
  sampler_reset();
  obs::sampler_start(997);
  const std::uint32_t pass = obs::sampler_new_pass();
  ASSERT_NE(pass, 0u);
  {
    obs::sample_pass_scope ps(pass);
    obs::sample_node_scope ns(5);
    spin_ms(250);
  }
  obs::sampler_stop();

  std::uint64_t period = 0;
  const std::vector<obs::node_samples> agg =
      obs::sampler_pass_samples(pass, &period);
  EXPECT_GT(period, 0u);
  std::uint64_t node5_cpu = 0;
  for (const obs::node_samples& e : agg) {
    EXPECT_EQ(e.pass, pass);
    if (e.node == 5) node5_cpu += e.cpu;
  }
  EXPECT_GT(node5_cpu, 0u) << "no cpu samples attributed to node 5";
  // A different pass token matches nothing.
  EXPECT_TRUE(obs::sampler_pass_samples(pass + 1, nullptr).empty());
  sampler_reset();
}

TEST(Sampler, WaitScopeSplitsOffCpu) {
  sampler_reset();
  obs::sampler_start(997);
  const std::uint32_t pass = obs::sampler_new_pass();
  {
    obs::sample_pass_scope ps(pass);
    obs::sample_wait_scope ws(obs::sample_state::io_wait);
    // Wall-clock timers keep firing while the thread sleeps — that is the
    // point: blocked time is sampled and attributed off-CPU.
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
  obs::sampler_stop();

  std::uint64_t io_wait = 0;
  for (const obs::node_samples& e : obs::sampler_pass_samples(pass, nullptr))
    io_wait += e.io_wait;
  EXPECT_GT(io_wait, 0u) << "sleep under sample_wait_scope took no io_wait "
                            "samples";
  const std::string folded = obs::folded_stacks();
  EXPECT_NE(folded.find(";io_wait;"), std::string::npos) << folded;
  sampler_reset();
}

TEST(Sampler, WriteFoldedRoundTrip) {
  sampler_reset();
  obs::sampler_start(997);
  spin_ms(150);
  obs::sampler_stop();

  const std::string path = "/tmp/flashr_test_sampler_folded.txt";
  const obs::folded_summary s = obs::write_folded(path);
  EXPECT_GT(s.lines, 0u);
  EXPECT_GT(s.samples, 0u);
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  std::string text;
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  EXPECT_EQ(folded_lines(text).size(), s.lines);
  std::remove(path.c_str());
  sampler_reset();
}

// Acceptance gate: with one worker thread, per-node sampled self-time
// (cpu samples x period) must cover the measured kernel+copy time. Both
// are wall-clock measures of the same scopes, so the ratio is ~1 up to
// sampling noise.
TEST(Sampler, ExplainAnalyzeSampledSelfTimeCoverage) {
  sampler_reset();
  options o = sampler_options();
  o.num_threads = 1;
  o.obs_sample_hz = 1997;
  init(o);
  obs::profile_clear();

  dense_matrix X = dense_matrix::runif(500000, 4, 0.1, 1.0, 3);
  dense_matrix v = log(X + 1.0);
  v = exp(v * 0.5);
  v = sigmoid(v);
  v = sqrt(v + 0.25);
  v = log1p(v * v);
  const std::string json = sum(v).explain_analyze();

  init(sampler_options());  // hz back to 0 — stops the sampler
  const std::size_t totals = json.find("\"totals\":");
  ASSERT_NE(totals, std::string::npos);
  const std::uint64_t kernel = sum_u64(json, "kernel_ns", totals) +
                               sum_u64(json, "copy_ns", totals);
  const std::uint64_t sampled = sum_u64(json, "sampled_ns", totals);
  const std::uint64_t samples = sum_u64(json, "samples", totals);
  ASSERT_GT(kernel, 0u);
  EXPECT_GT(find_u64(json, "sample_period_ns"), 0u)
      << "pass JSON lacks the sampler join fields";
#ifdef FLASHR_TEST_SANITIZED
  // Sanitizer runtimes intercept signal delivery and skew both measures;
  // presence is enough there.
  EXPECT_GT(samples, 0u);
#else
  ASSERT_GT(samples, 20u) << json;
  const double cover =
      static_cast<double>(sampled) / static_cast<double>(kernel);
  EXPECT_GE(cover, 0.80) << "sampled " << sampled << " ns vs kernel "
                         << kernel << " ns\n" << json;
  EXPECT_LE(cover, 1.60) << "sampled self-time double-counted?\n" << json;
#endif
  sampler_reset();
}

TEST(Sampler, RestartAndClear) {
  sampler_reset();
  obs::sampler_start(499);
  EXPECT_EQ(obs::sampler_stats().hz, 499u);
  obs::sampler_start(997);  // re-arm at a new rate
  EXPECT_EQ(obs::sampler_stats().hz, 997u);
  spin_ms(100);
  obs::sampler_stop();
  EXPECT_GT(obs::sampler_stats().samples, 0u);
  obs::sampler_clear();
  EXPECT_EQ(obs::sampler_stats().samples, 0u);
  EXPECT_TRUE(obs::folded_stacks().empty());
}

// ---------------------------------------------------------------------------
// Profile-history store (flashr-prof-v1)
// ---------------------------------------------------------------------------

TEST(ProfStore, RecordRoundTripAndPrune) {
  sampler_reset();
  const std::string dir = "/tmp/flashr_test_prof_store";
  std::system(("rm -rf " + dir).c_str());

  obs::sampler_start(997);
  {
    obs::sample_pass_scope ps(obs::sampler_new_pass());
    obs::sample_node_scope ns(3);
    spin_ms(150);
  }
  obs::sampler_stop();

  obs::prof_store_arm(dir, /*keep=*/3);
  ASSERT_TRUE(obs::prof_store_armed());
  std::string last;
  for (int i = 0; i < 5; ++i) {
    last = obs::prof_store_append("test");
    ASSERT_FALSE(last.empty());
  }
  EXPECT_EQ(last.rfind("prof-", 0), 0u) << last;

  // Retention: only the newest `keep` records remain listed.
  const std::string list = obs::prof_store_list_json();
  std::size_t count = 0;
  for (std::size_t pos = list.find("\"name\""); pos != std::string::npos;
       pos = list.find("\"name\"", pos + 1))
    ++count;
  EXPECT_EQ(count, 3u) << list;
  EXPECT_NE(list.find(last), std::string::npos) << list;

  std::string body;
  ASSERT_TRUE(obs::prof_store_fetch(last, &body));
  EXPECT_NE(body.find("\"schema\":\"flashr-prof-v1\""), std::string::npos);
  EXPECT_NE(body.find("\"label\":\"test\""), std::string::npos);
  EXPECT_NE(body.find("\"nodes\":"), std::string::npos);
  EXPECT_NE(body.find("\"stacks\":"), std::string::npos);
  EXPECT_NE(body.find("\"node\":3"), std::string::npos)
      << "node aggregate lost in the record:\n" << body;

  // Traversal and shape rejection.
  EXPECT_FALSE(obs::prof_store_fetch("../" + last, &body));
  EXPECT_FALSE(obs::prof_store_fetch("..", &body));
  EXPECT_FALSE(obs::prof_store_fetch("/etc/passwd", &body));
  EXPECT_FALSE(obs::prof_store_fetch("not-a-record.json", &body));
  EXPECT_FALSE(obs::prof_store_fetch("prof-but-not-json.txt", &body));
  EXPECT_FALSE(obs::prof_store_fetch("", &body));

  obs::prof_store_disarm();
  EXPECT_FALSE(obs::prof_store_armed());
  EXPECT_EQ(obs::prof_store_append("after-disarm"), "");
  std::system(("rm -rf " + dir).c_str());
  sampler_reset();
}

// ---------------------------------------------------------------------------
// Stats server routes
// ---------------------------------------------------------------------------

TEST(StatsServerSampler, ProfileEndpointRouting) {
  sampler_reset();
  // seconds=0: non-blocking snapshot, valid with the sampler off.
  const std::string prof =
      obs::stats_server::http_response("/debug/pprof/profile?seconds=0");
  EXPECT_EQ(prof.rfind("HTTP/1.0 200 OK", 0), 0u) << prof;
  EXPECT_NE(prof.find("Content-Type: text/plain"), std::string::npos);

  // A malformed window is rejected up front — it must never fall back to
  // the blocking default and stall the serial accept loop.
  for (const char* q : {"seconds=x", "seconds=-1", "frobnicate=1"}) {
    const std::string bad = obs::stats_server::http_response(
        std::string("/debug/pprof/profile?") + q);
    EXPECT_EQ(bad.rfind("HTTP/1.0 400 Bad Request", 0), 0u) << q << "\n" << bad;
  }

  const std::string list = obs::stats_server::http_response("/debug/profiles");
  EXPECT_EQ(list.rfind("HTTP/1.0 200 OK", 0), 0u);
  EXPECT_NE(list.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(list.find("\"records\""), std::string::npos) << list;

  // Fetch: missing records and traversal attempts are both plain 404s.
  for (const char* path : {"/debug/profiles/prof-00000000000000000000.json",
                           "/debug/profiles/../../etc/passwd",
                           "/debug/profiles/..",
                           "/debug/profiles/not-a-record.json"}) {
    const std::string r = obs::stats_server::http_response(path);
    EXPECT_EQ(r.rfind("HTTP/1.0 404 Not Found", 0), 0u) << path << "\n" << r;
  }
}

TEST(StatsServerSampler, ProfileEndpointCollectsWindow) {
  sampler_reset();
  // Sampler off: the endpoint starts it for the window, samples this
  // process, and stops it again.
  std::atomic<bool> stop{false};
  std::thread burner([&stop] {
    while (!stop.load(std::memory_order_relaxed)) spin_ms(10);
  });
  const std::string body = obs::folded_profile_window(1);
  stop.store(true);
  burner.join();
  EXPECT_FALSE(obs::sampler_on()) << "window did not stop the sampler";
  const std::vector<std::string> lines = folded_lines(body);
  ASSERT_FALSE(lines.empty()) << "1s window over a busy process was empty";
  for (const std::string& line : lines) expect_well_formed(line);
  sampler_reset();
}

std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\nHost: t\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), 0);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    out.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return out;
}

// TSan gate: scraping the sampler endpoints while sampled materializations
// run must be race-free.
TEST(StatsServerSampler, ConcurrentScrapeWhileSampling) {
  sampler_reset();
  options o = sampler_options();
  o.obs_profile = true;
  o.obs_metrics = true;
  o.obs_sample_hz = 499;
  init(o);
  obs::profile_clear();

  auto& s = obs::stats_server::global();
  ASSERT_TRUE(s.start(0));
  const int port = s.port();
  ASSERT_GT(port, 0);

  std::atomic<bool> stop{false};
  std::atomic<int> scrapes{0};
  std::thread scraper([&stop, &scrapes, port] {
    while (!stop.load(std::memory_order_relaxed)) {
      // seconds=0 keeps the scrape non-blocking; the serial accept loop
      // would otherwise stall every other route behind the window.
      if (!http_get(port, "/debug/pprof/profile?seconds=0").empty())
        ++scrapes;
      (void)http_get(port, "/debug/profiles");
      (void)http_get(port, "/metrics");
    }
  });

  for (int i = 0; i < 3; ++i) {
    dense_matrix X = dense_matrix::runif(60000, 4, 0.1, 1.0, 11 + i);
    (void)sum(exp(X * 0.5)).scalar();
  }

  stop.store(true);
  scraper.join();
  s.stop();
  EXPECT_GT(scrapes.load(), 0);
  init(sampler_options());
  sampler_reset();
}

// ---------------------------------------------------------------------------
// Native Prometheus histogram buckets (obs_prom_buckets)
// ---------------------------------------------------------------------------

TEST(PromBuckets, NativeHistogramExport) {
  auto& h = obs::metrics_registry::global().get_histogram("samp.bucket_test");
  h.reset();
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(100);

  options o = sampler_options();
  o.obs_prom_buckets = true;
  init(o);
  const std::string prom = obs::metrics_registry::global().to_prometheus();
  init(sampler_options());

  const std::string name = "flashr_samp_bucket_test";
  EXPECT_NE(prom.find("# TYPE " + name + " histogram"), std::string::npos);
  EXPECT_NE(prom.find(name + "_bucket{le=\"0\"} 1\n"), std::string::npos);
  EXPECT_NE(prom.find(name + "_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(prom.find(name + "_bucket{le=\"3\"} 4\n"), std::string::npos);
  EXPECT_NE(prom.find(name + "_bucket{le=\"127\"} 5\n"), std::string::npos);
  EXPECT_NE(prom.find(name + "_bucket{le=\"+Inf\"} 5\n"), std::string::npos);
  EXPECT_NE(prom.find(name + "_count 5\n"), std::string::npos);
  EXPECT_NE(prom.find(name + "_sum 106\n"), std::string::npos);
  // No quantile series in native mode for this family.
  EXPECT_EQ(prom.find(name + "{quantile"), std::string::npos);

  // Default stays the summary exposition.
  const std::string prom2 = obs::metrics_registry::global().to_prometheus();
  EXPECT_NE(prom2.find("# TYPE " + name + " summary"), std::string::npos);
  EXPECT_NE(prom2.find(name + "{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_EQ(prom2.find(name + "_bucket"), std::string::npos);
}

// The sampler's own health counters are exported for check_prom --require.
TEST(PromBuckets, SamplerCountersExported) {
  obs::sampler_register_metrics();
  const std::string prom = obs::metrics_registry::global().to_prometheus();
  EXPECT_NE(prom.find("flashr_sampler_samples"), std::string::npos);
  EXPECT_NE(prom.find("flashr_sampler_drops"), std::string::npos);
}

}  // namespace
}  // namespace flashr
