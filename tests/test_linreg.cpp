// Linear regression / ridge / thin-SVD tests.
#include <gtest/gtest.h>

#include <cmath>

#include "common/config.h"
#include "common/rng.h"
#include "core/dense_matrix.h"
#include "ml/linreg.h"

namespace flashr::ml {
namespace {

class LinregTest : public ::testing::TestWithParam<storage> {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.io_part_rows = 256;
    init(o);
  }
  dense_matrix place(const dense_matrix& m) const {
    return conv_store(m, GetParam());
  }
};

TEST_P(LinregTest, RecoversExactCoefficientsNoiseless) {
  const std::size_t n = 2000, p = 4;
  smat h(n, p), yv(n, 1);
  rng64 rng(1);
  const double w_true[4] = {2.0, -1.0, 0.5, 3.0};
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 7.0;  // intercept
    for (std::size_t j = 0; j < p; ++j) {
      h(i, j) = rng.next_normal();
      acc += w_true[j] * h(i, j);
    }
    yv(i, 0) = acc;
  }
  dense_matrix X = place(dense_matrix::from_smat(h));
  dense_matrix y = place(dense_matrix::from_smat(yv));
  linreg_model m = linear_regression(X, y);
  for (std::size_t j = 0; j < p; ++j) EXPECT_NEAR(m.w(j, 0), w_true[j], 1e-8);
  EXPECT_NEAR(m.w(p, 0), 7.0, 1e-8);
  EXPECT_NEAR(m.r2, 1.0, 1e-9);
}

TEST_P(LinregTest, NoisyFitHasSensibleR2) {
  const std::size_t n = 5000;
  smat h(n, 1), yv(n, 1);
  rng64 rng(2);
  for (std::size_t i = 0; i < n; ++i) {
    h(i, 0) = rng.next_normal();
    yv(i, 0) = 2.0 * h(i, 0) + rng.next_normal();  // SNR 4:1 -> R2 ~ 0.8
  }
  dense_matrix X = place(dense_matrix::from_smat(h));
  dense_matrix y = place(dense_matrix::from_smat(yv));
  linreg_model m = linear_regression(X, y);
  EXPECT_NEAR(m.w(0, 0), 2.0, 0.05);
  EXPECT_NEAR(m.r2, 0.8, 0.03);
}

TEST_P(LinregTest, RidgeShrinksCoefficients) {
  const std::size_t n = 500;
  smat h(n, 2), yv(n, 1);
  rng64 rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    h(i, 0) = rng.next_normal();
    h(i, 1) = h(i, 0) + 1e-3 * rng.next_normal();  // near-collinear
    yv(i, 0) = h(i, 0) + h(i, 1);
  }
  dense_matrix X = place(dense_matrix::from_smat(h));
  dense_matrix y = place(dense_matrix::from_smat(yv));
  linreg_options strong;
  strong.l2 = 100.0;
  linreg_options weak;
  weak.l2 = 1e-6;
  linreg_model ms = linear_regression(X, y, strong);
  linreg_model mw = linear_regression(X, y, weak);
  EXPECT_LT(std::abs(ms.w(0, 0)) + std::abs(ms.w(1, 0)),
            std::abs(mw.w(0, 0)) + std::abs(mw.w(1, 0)));
  // Predictions still track the target under weak regularization.
  dense_matrix pred = linreg_predict(X, mw);
  double max_err = max(abs(pred - y)).scalar();
  EXPECT_LT(max_err, 0.05);
}

TEST_P(LinregTest, SingularWithoutRidgeThrows) {
  // Duplicate column makes the normal equations singular.
  dense_matrix c = dense_matrix::rnorm(300, 1, 0, 1, 4);
  dense_matrix X = place(cbind({c, c}));
  dense_matrix y = place(dense_matrix::rnorm(300, 1, 0, 1, 5));
  linreg_options no_ridge;
  no_ridge.l2 = 0;
  no_ridge.add_intercept = false;
  EXPECT_THROW(linear_regression(X, y, no_ridge), error);
  no_ridge.l2 = 1e-3;
  EXPECT_NO_THROW(linear_regression(X, y, no_ridge));
}

TEST_P(LinregTest, ThinSvdReconstructs) {
  const std::size_t n = 1500, p = 5;
  dense_matrix X = place(dense_matrix::rnorm(n, p, 0, 1, 6));
  svd_result s = svd(X);
  ASSERT_EQ(s.d.size(), p);
  for (std::size_t j = 1; j < p; ++j) EXPECT_LE(s.d[j], s.d[j - 1] + 1e-9);

  // U^T U = I and X ~= U diag(d) V^T.
  dense_matrix U = svd_u(X, s);
  smat utu = crossprod(U).to_smat();
  EXPECT_LT(utu.max_abs_diff(smat::identity(p)), 1e-8);

  smat uh = U.to_smat(), xh = X.to_smat();
  for (std::size_t i = 0; i < 50; ++i)
    for (std::size_t j = 0; j < p; ++j) {
      double recon = 0;
      for (std::size_t c = 0; c < p; ++c)
        recon += uh(i, c) * s.d[c] * s.v(j, c);
      EXPECT_NEAR(recon, xh(i, j), 1e-8);
    }
}

TEST_P(LinregTest, TruncatedSvdKeepsTopComponents) {
  dense_matrix X = place(dense_matrix::rnorm(800, 6, 0, 1, 7));
  svd_result s = svd(X, 2);
  EXPECT_EQ(s.d.size(), 2u);
  EXPECT_EQ(s.v.ncol(), 2u);
  dense_matrix U = svd_u(X, s);
  EXPECT_EQ(U.ncol(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Storages, LinregTest,
                         ::testing::Values(storage::in_mem, storage::ext_mem),
                         [](const ::testing::TestParamInfo<storage>& i) {
                           return i.param == storage::in_mem ? "im" : "em";
                         });

}  // namespace
}  // namespace flashr::ml
