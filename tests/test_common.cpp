// Unit tests for the common substrate: types, RNG, buffer pool, scheduler,
// thread pool, alignment.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/align.h"
#include "common/config.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/types.h"
#include "mem/buffer_pool.h"
#include "parallel/scheduler.h"
#include "parallel/thread_pool.h"

namespace flashr {
namespace {

TEST(Types, SizesAndNames) {
  EXPECT_EQ(type_size(scalar_type::f64), 8u);
  EXPECT_EQ(type_size(scalar_type::f32), 4u);
  EXPECT_EQ(type_size(scalar_type::i64), 8u);
  EXPECT_EQ(type_size(scalar_type::i32), 4u);
  EXPECT_STREQ(type_name(scalar_type::f64), "f64");
}

TEST(Types, PromotionLattice) {
  EXPECT_EQ(promote(scalar_type::i32, scalar_type::i64), scalar_type::i64);
  EXPECT_EQ(promote(scalar_type::i64, scalar_type::f32), scalar_type::f32);
  EXPECT_EQ(promote(scalar_type::f32, scalar_type::f64), scalar_type::f64);
  EXPECT_EQ(promote(scalar_type::f64, scalar_type::i32), scalar_type::f64);
}

TEST(Types, DispatchSelectsCorrectType) {
  std::size_t sz = dispatch_type(scalar_type::f32,
                                 [&]<typename T>() { return sizeof(T); });
  EXPECT_EQ(sz, 4u);
  sz = dispatch_type(scalar_type::i64, [&]<typename T>() { return sizeof(T); });
  EXPECT_EQ(sz, 8u);
}

TEST(Rng, CounterUniformIsDeterministic) {
  EXPECT_EQ(counter_uniform(42, 7), counter_uniform(42, 7));
  EXPECT_NE(counter_uniform(42, 7), counter_uniform(42, 8));
  EXPECT_NE(counter_uniform(42, 7), counter_uniform(43, 7));
}

TEST(Rng, UniformInRange) {
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const double u = counter_uniform(1, i);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  double s = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += counter_uniform(9, static_cast<std::uint64_t>(i));
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  double s = 0, s2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = counter_normal(3, static_cast<std::uint64_t>(i));
    s += v;
    s2 += v * v;
  }
  EXPECT_NEAR(s / n, 0.0, 0.02);
  EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Rng, SequentialRngBelow) {
  rng64 r(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Align, RoundUp) {
  EXPECT_EQ(round_up(1, 4096), 4096u);
  EXPECT_EQ(round_up(4096, 4096), 4096u);
  EXPECT_EQ(round_up(4097, 4096), 8192u);
}

TEST(Align, AlignedAllocAligned) {
  auto p = aligned_alloc_bytes(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p.get()) % kBufferAlign, 0u);
}

TEST(BufferPool, RecyclesSameBuffer) {
  buffer_pool pool;
  char* first;
  {
    auto b = pool.get(1000);
    first = b.data();
    EXPECT_GE(b.size(), 1000u);
  }
  auto b2 = pool.get(900);  // same size class
  EXPECT_EQ(b2.data(), first);
}

TEST(BufferPool, TracksPeak) {
  buffer_pool pool;
  {
    auto a = pool.get(1 << 12);
    auto b = pool.get(1 << 12);
    EXPECT_GE(pool.outstanding_bytes(), std::size_t{2} << 12);
  }
  EXPECT_EQ(pool.outstanding_bytes(), 0u);
  EXPECT_GE(pool.peak_bytes(), std::size_t{2} << 12);
}

TEST(BufferPool, SizeClassRounding) {
  buffer_pool pool;
  auto a = pool.get(1);
  EXPECT_GE(a.size(), 512u);
  auto b = pool.get(513);
  EXPECT_GE(b.size(), 1024u);
}

TEST(BufferPool, MoveTransfersOwnership) {
  buffer_pool pool;
  pool_buffer a = pool.get(512);
  char* p = a.data();
  pool_buffer b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
}

TEST(BufferPool, TrimFreesCached) {
  buffer_pool pool;
  { auto a = pool.get(2048); }
  EXPECT_EQ(pool.cached_count(), 1u);
  pool.trim();
  EXPECT_EQ(pool.cached_count(), 0u);
}

TEST(Scheduler, CoversAllPartitionsOnce) {
  part_scheduler sched(1000, 4, 8);
  std::vector<int> seen(1000, 0);
  std::size_t b, e;
  while (sched.fetch(b, e))
    for (std::size_t i = b; i < e; ++i) ++seen[i];
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(Scheduler, DispatchesSequentially) {
  part_scheduler sched(100, 2, 4);
  std::size_t last_end = 0, b, e;
  while (sched.fetch(b, e)) {
    EXPECT_EQ(b, last_end);  // strictly increasing, contiguous
    last_end = e;
  }
  EXPECT_EQ(last_end, 100u);
}

TEST(Scheduler, ShrinksBatchesNearEnd) {
  part_scheduler sched(100, 4, 8);
  std::size_t b, e;
  std::vector<std::size_t> sizes;
  while (sched.fetch(b, e)) sizes.push_back(e - b);
  // The final dispatches must be single partitions.
  EXPECT_EQ(sizes.back(), 1u);
  // The first dispatch is a full batch.
  EXPECT_EQ(sizes.front(), 8u);
}

TEST(Scheduler, ParallelFetchIsRaceFree) {
  part_scheduler sched(10000, 8, 4);
  std::atomic<std::size_t> total{0};
  thread_pool pool(8);
  pool.run_all([&](int) {
    std::size_t b, e;
    while (sched.fetch(b, e)) total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 10000u);
}

TEST(StaticScheduler, PartitionsDisjointAndComplete) {
  static_scheduler sched(103, 4);
  std::set<std::size_t> seen;
  for (int t = 0; t < 4; ++t) {
    std::size_t cursor = 0, p;
    while (sched.fetch(t, cursor, p)) EXPECT_TRUE(seen.insert(p).second);
  }
  EXPECT_EQ(seen.size(), 103u);
}

TEST(ThreadPool, RunsAllWorkers) {
  thread_pool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run_all([&](int idx) { hits[static_cast<std::size_t>(idx)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesException) {
  thread_pool pool(3);
  EXPECT_THROW(pool.run_all([&](int idx) {
                 if (idx == 1) throw std::runtime_error("boom");
               }),
               std::runtime_error);
  // The pool remains usable after an exception.
  std::atomic<int> n{0};
  pool.run_all([&](int) { ++n; });
  EXPECT_EQ(n.load(), 3);
}

TEST(ThreadPool, SizeOneRunsInline) {
  thread_pool pool(1);
  std::atomic<int> n{0};
  pool.run_all([&](int idx) {
    EXPECT_EQ(idx, 0);
    ++n;
  });
  EXPECT_EQ(n.load(), 1);
}

TEST(Config, ValidateRejectsBadValues) {
  options o;
  o.io_part_rows = 100;  // not a power of two
  EXPECT_THROW(o.validate(), error);
  o = options();
  o.num_threads = 0;
  EXPECT_THROW(o.validate(), error);
  o = options();
  o.stripes = 0;
  EXPECT_THROW(o.validate(), error);
}

}  // namespace
}  // namespace flashr
