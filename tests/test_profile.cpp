// EXPLAIN ANALYZE + stats-server tests (src/obs/profile.*, stats_server.*):
// per-node pass profiling attribution (kernel-time coverage of the pass wall
// time in every exec mode, plan-id agreement with explain(), bounded history
// ring), Prometheus text exposition, the embedded HTTP endpoint (routing,
// a real-socket client, concurrent scrape during materialization), log-level
// parsing, and trace counter events.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/log.h"
#include "core/dense_matrix.h"
#include "core/exec.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/stats_server.h"
#include "obs/trace.h"

namespace flashr {
namespace {

options profile_options() {
  options o;
  o.em_dir = "/tmp/flashr_test_profile";
  o.num_threads = 4;
  o.io_part_rows = 1024;
  o.pcache_bytes = 4096;
  o.small_nrow_threshold = 16;
  return o;
}

/// Value of the first `"key": N` at or after `from`; fails the test when the
/// key is absent.
std::uint64_t find_u64(const std::string& json, const std::string& key,
                       std::size_t from = 0) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t pos = json.find(needle, from);
  EXPECT_NE(pos, std::string::npos) << "missing key " << key;
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

/// Sum of every `"key": N` occurrence after `from` (e.g. all kernel_ns
/// entries of the totals section, which explain_analyze emits last).
std::uint64_t sum_u64(const std::string& json, const std::string& key,
                      std::size_t from) {
  const std::string needle = "\"" + key + "\": ";
  std::uint64_t total = 0;
  for (std::size_t pos = json.find(needle, from); pos != std::string::npos;
       pos = json.find(needle, pos + 1))
    total += std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
  return total;
}

/// A compute-heavy DAG whose kernel time dominates scheduling overhead:
/// a chain of transcendental maps ending in a 1x1 sum sink.
dense_matrix heavy_chain(std::size_t n) {
  dense_matrix X = dense_matrix::runif(n, 4, 0.1, 1.0, 3);
  dense_matrix v = log(X + 1.0);
  v = exp(v * 0.5);
  v = sigmoid(v);
  v = sqrt(v + 0.25);
  v = log1p(v * v);
  return sum(v);
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE
// ---------------------------------------------------------------------------

// Sanitizer instrumentation inflates the engine's non-kernel bookkeeping
// (allocation, scheduling) far more than the kernels themselves, so the
// coverage lower bound cannot hold under tsan/asan.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define FLASHR_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define FLASHR_TEST_SANITIZED 1
#endif
#endif

// Acceptance gate: per-node kernel times must explain the pass wall time to
// within 15% in all three exec modes. One worker thread makes kernel-ns and
// wall-ns directly comparable (no parallel overlap).
TEST(ProfileAnalyze, KernelTimeCoversWallInAllModes) {
#ifdef FLASHR_TEST_SANITIZED
  constexpr double kMinCover = 0.40;
#else
  constexpr double kMinCover = 0.85;
#endif
  for (exec_mode m :
       {exec_mode::eager, exec_mode::mem_fuse, exec_mode::cache_fuse}) {
    options o = profile_options();
    o.num_threads = 1;
    o.mode = m;
    init(o);
    obs::profile_clear();

    const std::string json = heavy_chain(400000).explain_analyze();
    const std::uint64_t wall = find_u64(json, "wall_ns");
    ASSERT_GT(wall, 0u) << exec_mode_name(m);
    const std::size_t totals = json.find("\"totals\":");
    ASSERT_NE(totals, std::string::npos);
    // Kernel time plus chunk-copy time: output staging moves are profiled
    // separately (copy_ns) so the zero-copy path can prove itself, but both
    // are work the pass performed.
    const std::uint64_t kernel = sum_u64(json, "kernel_ns", totals) +
                                 sum_u64(json, "copy_ns", totals);
    const double cover =
        static_cast<double>(kernel) / static_cast<double>(wall);
    EXPECT_GE(cover, kMinCover) << "mode " << exec_mode_name(m) << ": kernel "
                                << kernel << " wall " << wall;
    EXPECT_LE(cover, 1.15) << "mode " << exec_mode_name(m) << ": kernel "
                           << kernel << " wall " << wall;
  }
}

// The ids explain_analyze attributes costs to ARE explain()'s ids: the plan
// section is byte-identical to explain(), and the totals array is indexed by
// those ids in order.
TEST(ProfileAnalyze, NodeIdsMatchExplain) {
  options o = profile_options();
  o.mode = exec_mode::cache_fuse;
  init(o);
  obs::profile_clear();

  dense_matrix d = heavy_chain(50000);
  const std::string plan = d.explain();  // before: analyze collapses the DAG
  const std::string json = d.explain_analyze();
  EXPECT_NE(json.find("\"plan\": " + plan), std::string::npos)
      << "embedded plan differs from explain()";

  // Count the plan's nodes and check the totals cover ids 0..n-1 in order.
  std::size_t num_nodes = 0;
  for (std::size_t pos = plan.find("\"id\": "); pos != std::string::npos;
       pos = plan.find("\"id\": ", pos + 1))
    ++num_nodes;
  ASSERT_GT(num_nodes, 2u);
  std::size_t at = json.find("\"totals\":");
  ASSERT_NE(at, std::string::npos);
  for (std::size_t id = 0; id < num_nodes; ++id) {
    const std::string needle = "{\"id\": " + std::to_string(id) + ",";
    at = json.find(needle, at);
    ASSERT_NE(at, std::string::npos) << "totals missing node id " << id;
  }

  // The measured side is plausible: the generated leaf (id 0) was generated,
  // every virtual node ran kernels over all rows, and the sink accumulated.
  const std::size_t totals = json.find("\"totals\":");
  const std::size_t leaf = json.find("{\"id\": 0,", totals);
  EXPECT_GT(find_u64(json, "kernel_ns", leaf), 0u) << "leaf generation";
  EXPECT_GT(find_u64(json, "rows", leaf), 0u);
  const std::size_t sink = json.find("\"sink\": true", totals);
  ASSERT_NE(sink, std::string::npos);
  EXPECT_GT(find_u64(json, "kernel_ns", sink), 0u) << "sink accumulate";

  // The annotated dot names every node and carries measured labels.
  obs::profile_clear();
  dense_matrix d2 = heavy_chain(50000);
  const std::string dot = d2.explain_analyze_dot();
  EXPECT_NE(dot.find("digraph flashr_explain_analyze"), std::string::npos);
  EXPECT_NE(dot.find("kernel "), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);

  // Both runs were kept as "last".
  EXPECT_FALSE(obs::last_explain_analyze_json().empty());
  EXPECT_EQ(obs::last_explain_analyze_dot(), dot);
}

// EM inputs must show up as I/O wait + bytes on the EM leaf.
TEST(ProfileAnalyze, EmLeafAccountsIoAndBytes) {
  options o = profile_options();
  o.mode = exec_mode::cache_fuse;
  init(o);
  obs::profile_clear();

  dense_matrix X = conv_store(dense_matrix::runif(20000, 4, 0, 1, 11),
                              storage::ext_mem);
  dense_matrix d = sum(sqrt(X + 1.0));
  const std::string json = d.explain_analyze();
  const std::size_t totals = json.find("\"totals\":");
  ASSERT_NE(totals, std::string::npos);
  const std::size_t leaf = json.find("\"leaf\": true", totals);
  ASSERT_NE(leaf, std::string::npos);
  EXPECT_GT(find_u64(json, "partitions", leaf), 0u);
  EXPECT_EQ(find_u64(json, "rows", leaf), 20000u);
  // Partition read buffers are full-partition sized even for the ragged
  // tail, so leaf bytes are at least the matrix's payload.
  EXPECT_GE(find_u64(json, "bytes", leaf), 20000u * 4u * 8u);
  EXPECT_GT(find_u64(json, "io_wait_ns", leaf), 0u);
}

TEST(ProfileHistory, RingIsBoundedAndOrdered) {
  options o = profile_options();
  o.obs_profile = true;
  o.obs_profile_history = 4;
  init(o);
  obs::profile_clear();

  for (int i = 0; i < 6; ++i) {
    dense_matrix X = dense_matrix::runif(4000, 3, 0, 1, 100 + i);
    (void)sum(X * 2.0).scalar();
  }
  const std::vector<obs::pass_profile> h = obs::profile_history();
  ASSERT_FALSE(h.empty());
  EXPECT_LE(h.size(), 4u);
  for (std::size_t i = 1; i < h.size(); ++i)
    EXPECT_GT(h[i].seq, h[i - 1].seq);
  EXPECT_EQ(h.back().seq, obs::profile_pass_seq());
  EXPECT_GE(obs::profile_pass_seq(), 6u);  // >= one pass per materialize
  for (const obs::pass_profile& p : h) {
    EXPECT_GT(p.wall_ns, 0u);
    EXPECT_FALSE(p.nodes.empty());
  }

  const std::string json = obs::profile_history_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"kernel_ns\": "), std::string::npos);

  obs::profile_clear();
  EXPECT_TRUE(obs::profile_history().empty());
  EXPECT_EQ(obs::profile_pass_seq(), 0u);
}

// Profiling off (the default): no pass is ever recorded.
TEST(ProfileHistory, DisabledRecordsNothing) {
  options o = profile_options();
  init(o);
  obs::profile_clear();
  dense_matrix X = dense_matrix::runif(4000, 3, 0, 1, 7);
  (void)sum(X * 2.0).scalar();
  EXPECT_TRUE(obs::profile_history().empty());
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

TEST(Prometheus, ExpositionFormat) {
  auto& reg = obs::metrics_registry::global();
  reg.get_counter("prom.test-counter").add(3);
  reg.get_gauge("prom.gauge").set(9);
  auto& h = reg.get_histogram("prom.hist");
  h.reset();
  h.record(100);
  h.record(200);

  const std::string text = reg.to_prometheus();
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');

  // Names are sanitized into [a-zA-Z0-9_:] under the flashr_ prefix, and
  // every family carries HELP + TYPE.
  EXPECT_NE(text.find("# HELP flashr_prom_test_counter "), std::string::npos);
  EXPECT_NE(text.find("# TYPE flashr_prom_test_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("\nflashr_prom_test_counter 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE flashr_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("\nflashr_prom_gauge 9\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE flashr_prom_hist summary"), std::string::npos);
  EXPECT_NE(text.find("flashr_prom_hist{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(text.find("flashr_prom_hist{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(text.find("flashr_prom_hist_sum 300\n"), std::string::npos);
  EXPECT_NE(text.find("flashr_prom_hist_count 2\n"), std::string::npos);

  // Every line is a comment or a `name{labels}? value` sample.
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t eol = text.find('\n', start);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(start, eol - start);
    start = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    ASSERT_GT(sp, 0u) << line;
    const char c0 = line[0];
    EXPECT_TRUE((c0 >= 'a' && c0 <= 'z') || (c0 >= 'A' && c0 <= 'Z') ||
                c0 == '_')
        << line;
  }
}

// ---------------------------------------------------------------------------
// Stats server
// ---------------------------------------------------------------------------

std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\nHost: t\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), 0);
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    out.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return out;
}

TEST(StatsServer, HttpResponseRoutes) {
  // Engine probes register lazily on first use; in a fresh process the
  // registry can be empty, so seed one instrument to make the exposition
  // non-trivial.
  obs::metrics_registry::global().get_counter("srv.route-test").add(1);

  // /healthz now carries governor health: 200 + JSON while the engine is
  // unloaded (503 under overload is covered by the governor tests).
  const std::string health = obs::stats_server::http_response("/healthz");
  EXPECT_EQ(health.rfind("HTTP/1.0 200 OK", 0), 0u);
  EXPECT_NE(health.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(health.find("\"ok\": true"), std::string::npos);

  const std::string metrics = obs::stats_server::http_response("/metrics");
  EXPECT_EQ(metrics.rfind("HTTP/1.0 200 OK", 0), 0u);
  EXPECT_NE(
      metrics.find("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
      std::string::npos);
  EXPECT_NE(metrics.find("# HELP "), std::string::npos);

  const std::string passes = obs::stats_server::http_response("/passes");
  EXPECT_EQ(passes.rfind("HTTP/1.0 200 OK", 0), 0u);
  EXPECT_NE(passes.find("Content-Type: application/json"), std::string::npos);

  const std::string last = obs::stats_server::http_response("/explain/last");
  EXPECT_EQ(last.rfind("HTTP/1.0 200 OK", 0), 0u);
  EXPECT_NE(last.find("Content-Type: application/json"), std::string::npos);

  const std::string missing = obs::stats_server::http_response("/nope");
  EXPECT_EQ(missing.rfind("HTTP/1.0 404 Not Found", 0), 0u);
}

TEST(StatsServer, ServesOverRealSocket) {
  obs::metrics_registry::global().get_counter("srv.socket-test").add(1);
  auto& s = obs::stats_server::global();
  ASSERT_TRUE(s.start(0));  // 0 = ephemeral port
  const int port = s.port();
  ASSERT_GT(port, 0);
  EXPECT_TRUE(s.running());
  EXPECT_TRUE(s.start(0)) << "idempotent re-start";
  EXPECT_EQ(s.port(), port);

  const std::string health = http_get(port, "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"ok\": true"), std::string::npos);

  // route() splits the query off the path; /metrics ignores whatever is left.
  const std::string metrics = http_get(port, "/metrics?ignored=1");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE "), std::string::npos);

  EXPECT_NE(http_get(port, "/nope").find("404"), std::string::npos);

  s.stop();
  EXPECT_FALSE(s.running());
  EXPECT_EQ(s.port(), 0);
  s.stop();  // idempotent

  ASSERT_TRUE(s.start(0)) << "restart after stop";
  EXPECT_NE(http_get(s.port(), "/healthz").find("200 OK"), std::string::npos);
  s.stop();
}

// TSan gate: scraping every endpoint while materializations (with profiling
// on) run must be race-free.
TEST(StatsServer, ConcurrentScrapeDuringMaterialize) {
  options o = profile_options();
  o.obs_profile = true;
  o.obs_metrics = true;
  init(o);
  obs::profile_clear();

  auto& s = obs::stats_server::global();
  ASSERT_TRUE(s.start(0));
  const int port = s.port();
  ASSERT_GT(port, 0);

  std::atomic<bool> stop{false};
  std::atomic<int> scrapes{0};
  std::thread scraper([&stop, &scrapes, port] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!http_get(port, "/metrics").empty()) ++scrapes;
      (void)http_get(port, "/passes");
      (void)http_get(port, "/explain/last");
    }
  });

  for (int i = 0; i < 3; ++i) {
    dense_matrix X = conv_store(dense_matrix::runif(8000, 4, 0, 1, 21 + i),
                                storage::ext_mem);
    (void)sum(exp(X * 0.5)).scalar();
  }
  (void)heavy_chain(20000).explain_analyze();

  stop.store(true);
  scraper.join();
  s.stop();
  EXPECT_GT(scrapes.load(), 0);
}

// ---------------------------------------------------------------------------
// Log levels & trace counters
// ---------------------------------------------------------------------------

TEST(ObsLog, LevelFromName) {
  log_level lvl = log_level::warn;
  EXPECT_TRUE(log_level_from_name("none", &lvl));
  EXPECT_EQ(lvl, log_level::none);
  EXPECT_TRUE(log_level_from_name("warn", &lvl));
  EXPECT_EQ(lvl, log_level::warn);
  EXPECT_TRUE(log_level_from_name("info", &lvl));
  EXPECT_EQ(lvl, log_level::info);
  EXPECT_TRUE(log_level_from_name("debug", &lvl));
  EXPECT_EQ(lvl, log_level::debug);
  EXPECT_TRUE(log_level_from_name("0", &lvl));
  EXPECT_EQ(lvl, log_level::none);
  EXPECT_TRUE(log_level_from_name("3", &lvl));
  EXPECT_EQ(lvl, log_level::debug);

  lvl = log_level::info;
  EXPECT_FALSE(log_level_from_name("verbose", &lvl));
  EXPECT_FALSE(log_level_from_name("", &lvl));
  EXPECT_FALSE(log_level_from_name("4", &lvl));
  EXPECT_FALSE(log_level_from_name("-1", &lvl));
  EXPECT_EQ(lvl, log_level::info) << "failed parse must not clobber";
}

TEST(ObsTrace, CounterEventsEmitPhC) {
  options o = profile_options();
  o.obs_trace = true;
  init(o);
  obs::trace_clear();

  OBS_COUNTER("test.counter", 5);
  OBS_COUNTER("test.counter", 7);
  const std::string json = obs::trace_json(nullptr);
  const std::string needle =
      "{\"name\":\"test.counter\",\"cat\":\"flashr\",\"ph\":\"C\"";
  std::size_t hits = 0;
  for (std::size_t pos = json.find(needle); pos != std::string::npos;
       pos = json.find(needle, pos + 1))
    ++hits;
  EXPECT_EQ(hits, 2u);
  EXPECT_NE(json.find("\"args\":{\"v\":5}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"v\":7}"), std::string::npos);
}

// The prefetch pipeline publishes its window occupancy as a counter track.
TEST(ObsTrace, PrefetchWindowCounterUnderEmWorkload) {
  options o = profile_options();
  o.obs_trace = true;
  o.mode = exec_mode::cache_fuse;
  init(o);
  obs::trace_clear();

  dense_matrix X = conv_store(dense_matrix::runif(20000, 4, 0, 1, 31),
                              storage::ext_mem);
  (void)sum(X * 2.0).scalar();
  const std::string json = obs::trace_json(nullptr);
  EXPECT_NE(json.find("{\"name\":\"prefetch.window\",\"cat\":\"flashr\","
                      "\"ph\":\"C\""),
            std::string::npos);
}

}  // namespace
}  // namespace flashr
