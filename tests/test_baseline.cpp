// Baseline-engine tests: the rowstream (H2O/MLlib stand-in) and blas_only
// (Revolution R Open stand-in) implementations must agree with the flashr
// engine on every benchmarked algorithm — otherwise Fig 7/8 comparisons
// would be measuring different computations.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/blas_only.h"
#include "baseline/rowstream.h"
#include "common/config.h"
#include "common/rng.h"
#include "core/dense_matrix.h"
#include "ml/kmeans.h"
#include "ml/lda.h"
#include "ml/logistic.h"
#include "ml/mvrnorm.h"
#include "ml/naive_bayes.h"
#include "ml/pca.h"
#include "ml/stats.h"

namespace flashr::baseline {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.num_threads = 4;
    o.io_part_rows = 256;
    init(o);
  }
};

smat host_random(std::size_t n, std::size_t p, std::uint64_t seed) {
  smat h(n, p);
  rng64 rng(seed);
  for (std::size_t j = 0; j < p; ++j)
    for (std::size_t i = 0; i < n; ++i) h(i, j) = rng.next_normal();
  return h;
}

TEST_F(BaselineTest, RsMapZipAggregate) {
  smat h = host_random(1000, 3, 1);
  rs_matrix X = rs_from_smat(h);
  rs_matrix sq = rs_map(X, 3, [](const double* in, double* out) {
    for (int j = 0; j < 3; ++j) out[j] = in[j] * in[j];
  });
  EXPECT_NEAR(sq.at(5, 2), h(5, 2) * h(5, 2), 1e-12);

  rs_matrix z = rs_zip(X, sq, 1, [](const double* a, const double* b,
                                    double* out) { out[0] = a[0] + b[0]; });
  EXPECT_NEAR(z.at(7, 0), h(7, 0) + h(7, 0) * h(7, 0), 1e-12);

  auto total = rs_aggregate(
      X, 1, {0.0},
      [](const double* row, double* s) { s[0] += row[0]; },
      [](double* a, const double* b) { a[0] += b[0]; });
  double expect = 0;
  for (std::size_t i = 0; i < 1000; ++i) expect += h(i, 0);
  EXPECT_NEAR(total[0], expect, 1e-8);
}

TEST_F(BaselineTest, RsCorrelationMatchesFlashr) {
  smat h = host_random(3000, 5, 2);
  for (std::size_t i = 0; i < 3000; ++i) h(i, 2) = h(i, 0) * 0.5 + h(i, 2);
  smat rs = rs_correlation(rs_from_smat(h));
  smat fr = ml::correlation(dense_matrix::from_smat(h));
  EXPECT_LT(rs.max_abs_diff(fr), 1e-9);
}

TEST_F(BaselineTest, RsPcaMatchesFlashr) {
  smat h = host_random(2000, 4, 3);
  auto rs_ev = rs_pca_eigenvalues(rs_from_smat(h));
  auto fr = ml::pca(dense_matrix::from_smat(h));
  for (std::size_t j = 0; j < 4; ++j)
    EXPECT_NEAR(rs_ev[j], fr.eigenvalues[j], 1e-8);
}

TEST_F(BaselineTest, RsNaiveBayesMatchesFlashr) {
  const std::size_t n = 2000, p = 3, k = 2;
  smat h = host_random(n, p, 4);
  smat lab(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    lab(i, 0) = static_cast<double>(i % k);
    h(i, 0) += lab(i, 0) * 2;
  }
  smat rs = rs_naive_bayes_train(rs_from_smat(h), rs_from_smat(lab), k);
  auto fr = ml::naive_bayes_train(
      dense_matrix::from_smat(h),
      dense_matrix::from_smat(lab, scalar_type::i64), k);
  for (std::size_t c = 0; c < k; ++c) {
    EXPECT_NEAR(rs(c, 2 * p), fr.priors[c], 1e-12);
    for (std::size_t j = 0; j < p; ++j) {
      EXPECT_NEAR(rs(c, j), fr.means(c, j), 1e-9);
      EXPECT_NEAR(rs(c, p + j), fr.vars(c, j), 1e-9);
    }
  }
}

TEST_F(BaselineTest, RsLogisticMatchesFlashr) {
  const std::size_t n = 4000, p = 2;
  smat h = host_random(n, p, 5);
  smat lab(n, 1);
  rng64 rng(6);
  for (std::size_t i = 0; i < n; ++i) {
    const double logit = 1.2 * h(i, 0) - 0.7 * h(i, 1) + 0.1;
    lab(i, 0) = rng.next_uniform() < 1 / (1 + std::exp(-logit)) ? 1 : 0;
  }
  smat w_rs = rs_logistic(rs_from_smat(h), rs_from_smat(lab), 50);
  ml::logistic_options o;
  o.max_iters = 50;
  auto m = ml::logistic_regression(dense_matrix::from_smat(h),
                                   dense_matrix::from_smat(lab), o);
  for (std::size_t j = 0; j <= p; ++j)
    EXPECT_NEAR(w_rs(j, 0), m.w(j, 0), 0.05);
}

TEST_F(BaselineTest, RsKmeansMatchesFlashrWithSameInit) {
  const std::size_t n = 3000, p = 3, k = 3;
  smat h = host_random(n, p, 7);
  for (std::size_t i = 0; i < n; ++i) h(i, 0) += static_cast<double>(i % 3) * 6;
  dense_matrix X = dense_matrix::from_smat(h);
  // Fixed identical init for both engines.
  smat init = gather_rows(X, {0, 1, 2});
  smat rs_centers = rs_kmeans(rs_from_smat(h), k, 5, init);
  // Run flashr k-means manually with the same init for 5 iterations.
  smat centers = init;
  for (int it = 0; it < 5; ++it) {
    dense_matrix I = ml::kmeans_assign(X, centers);
    dense_matrix cnt = count_groups(I, k);
    dense_matrix sums = groupby_row(X, I, k, agg_id::sum);
    materialize_all({cnt, sums});
    smat c = cnt.to_smat(), s = sums.to_smat();
    for (std::size_t g = 0; g < k; ++g)
      if (c(g, 0) > 0)
        for (std::size_t j = 0; j < p; ++j)
          centers(g, j) = s(g, j) / c(g, 0);
  }
  EXPECT_LT(rs_centers.max_abs_diff(centers), 1e-8);
}

TEST_F(BaselineTest, BoCrossprodMatchesSerial) {
  smat a = host_random(800, 5, 8), b = host_random(800, 3, 9);
  smat got = bo_crossprod(a, b);
  EXPECT_LT(got.max_abs_diff(a.crossprod(b)), 1e-9);
}

TEST_F(BaselineTest, BoMmMatchesSerial) {
  smat a = host_random(700, 4, 10), b = host_random(4, 6, 11);
  EXPECT_LT(bo_mm(a, b).max_abs_diff(a.mm(b)), 1e-10);
}

TEST_F(BaselineTest, BoMvrnormMoments) {
  smat mu = smat::from_rows(1, 2, {3.0, -1.0});
  smat sigma = smat::from_rows(2, 2, {1.0, 0.4, 0.4, 2.0});
  smat X = bo_mvrnorm(40000, mu, sigma, 12);
  smat m = bo_col_means(X);
  EXPECT_NEAR(m(0, 0), 3.0, 0.05);
  EXPECT_NEAR(m(0, 1), -1.0, 0.05);
  smat Xc = bo_sweep_sub(X, m);
  smat cov = bo_crossprod(Xc, Xc) * (1.0 / 39999.0);
  EXPECT_NEAR(cov(0, 0), 1.0, 0.05);
  EXPECT_NEAR(cov(0, 1), 0.4, 0.05);
}

TEST_F(BaselineTest, BoLdaPooledCovMatchesFlashr) {
  const std::size_t n = 1200, p = 3, k = 2;
  smat h = host_random(n, p, 13);
  smat lab(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    lab(i, 0) = static_cast<double>(i % k);
    h(i, 1) += lab(i, 0);
  }
  smat bo = bo_lda_pooled_cov(h, lab, k);
  auto fr = ml::lda_train(dense_matrix::from_smat(h),
                          dense_matrix::from_smat(lab, scalar_type::i64), k);
  EXPECT_LT(bo.max_abs_diff(fr.pooled_cov), 1e-8);
}

}  // namespace
}  // namespace flashr::baseline
