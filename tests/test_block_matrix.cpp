// Block matrix tests (§3.2.2): decomposition geometry and agreement with
// the monolithic wide-matrix path for every operation.
#include <gtest/gtest.h>

#include "common/config.h"
#include "core/dense_matrix.h"
#include "io/safs.h"
#include "matrix/block_matrix.h"
#include "ml/stats.h"

namespace flashr {
namespace {

class BlockMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.io_part_rows = 128;
    o.num_threads = 2;
    o.small_nrow_threshold = 64;  // keep the test matrices lazy/tall
    init(o);
  }
};

TEST_F(BlockMatrixTest, DecompositionGeometry) {
  dense_matrix wide = dense_matrix::rnorm(1000, 70, 0, 1, 1);
  block_matrix bm(wide);
  EXPECT_EQ(bm.num_blocks(), 3u);  // 32 + 32 + 6
  EXPECT_EQ(bm.block(0).ncol(), 32u);
  EXPECT_EQ(bm.block(2).ncol(), 6u);
  EXPECT_EQ(bm.nrow(), 1000u);
  EXPECT_EQ(bm.ncol(), 70u);
}

TEST_F(BlockMatrixTest, ExactMultipleOfBlockSize) {
  block_matrix bm = block_matrix::rnorm(500, 64, 0, 1, 2);
  EXPECT_EQ(bm.num_blocks(), 2u);
  EXPECT_EQ(bm.ncol(), 64u);
}

TEST_F(BlockMatrixTest, CrossprodMatchesMonolithic) {
  dense_matrix wide = dense_matrix::rnorm(2000, 70, 0, 1, 3);
  dense_matrix placed = conv_store(wide, storage::in_mem);
  block_matrix bm(placed);
  smat blocked = bm.crossprod();
  smat mono = crossprod(placed).to_smat();
  EXPECT_LT(blocked.max_abs_diff(mono), 1e-7);
}

TEST_F(BlockMatrixTest, CrossprodMatchesOnSsd) {
  dense_matrix wide =
      conv_store(dense_matrix::rnorm(1500, 40, 0, 1, 4), storage::ext_mem);
  block_matrix bm(wide);
  smat blocked = bm.crossprod();
  smat mono = crossprod(wide).to_smat();
  EXPECT_LT(blocked.max_abs_diff(mono), 1e-7);
}

TEST_F(BlockMatrixTest, CrossprodIsOnePass) {
  dense_matrix wide =
      conv_store(dense_matrix::rnorm(1024, 70, 0, 1, 5), storage::ext_mem);
  block_matrix bm(wide);
  io_stats::global().reset();
  bm.crossprod();
  // Exactly one pass over the data: every byte of the EM matrix is read
  // once, despite 6 block-pair sinks (blocks are per-column EM views, so
  // read *ops* count columns; the VOLUME is the one-pass invariant).
  EXPECT_EQ(io_stats::global().read_bytes.load(),
            1024u * 70u * sizeof(double));
}

TEST_F(BlockMatrixTest, ColSumsMatchesMonolithic) {
  dense_matrix wide = conv_store(dense_matrix::runif(1200, 45, -1, 2, 6),
                                 storage::in_mem);
  block_matrix bm(wide);
  smat blocked = bm.col_sums();
  smat mono = col_sums(wide).to_smat();
  EXPECT_LT(blocked.max_abs_diff(mono), 1e-8);
}

TEST_F(BlockMatrixTest, MatmulMatchesMonolithic) {
  dense_matrix wide = conv_store(dense_matrix::rnorm(900, 50, 0, 1, 7),
                                 storage::in_mem);
  block_matrix bm(wide);
  smat b(50, 3);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 50; ++i)
      b(i, j) = 0.01 * static_cast<double>(i) - 0.1 * static_cast<double>(j);
  smat blocked = bm.matmul(b).to_smat();
  smat mono = matmul(wide, dense_matrix::from_smat(b)).to_smat();
  EXPECT_LT(blocked.max_abs_diff(mono), 1e-8);
}

TEST_F(BlockMatrixTest, MapAndMap2) {
  dense_matrix wide = conv_store(dense_matrix::rnorm(800, 40, 0, 1, 8),
                                 storage::in_mem);
  block_matrix bm(wide);
  block_matrix sq = bm.map(uop_id::square);
  block_matrix sum2 = sq.map2(sq, bop_id::add);
  smat got = sum2.to_dense().to_smat();
  smat h = wide.to_smat();
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_NEAR(got(i, 5), 2 * h(i, 5) * h(i, 5), 1e-12);
}

TEST_F(BlockMatrixTest, ScaleAndToDense) {
  block_matrix bm = block_matrix::rnorm(600, 33, 1, 2, 9);
  dense_matrix dense = (bm * 3.0).to_dense();
  EXPECT_EQ(dense.ncol(), 33u);
  smat mu = col_means(dense).to_smat();
  EXPECT_NEAR(mu(0, 0), 3.0, 0.5);
}

}  // namespace
}  // namespace flashr
