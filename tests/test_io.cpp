// Tests for the SAFS-like striped storage and the asynchronous I/O service.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "common/config.h"
#include "io/async_io.h"
#include "io/safs.h"
#include "mem/buffer_pool.h"

namespace flashr {
namespace {

class SafsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.stripes = 3;
    o.stripe_unit = 4096;
    init(o);
  }
};

std::vector<char> pattern(std::size_t n, unsigned seed) {
  std::vector<char> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<char>((i * 131 + seed) & 0xff);
  return v;
}

TEST_F(SafsTest, RoundTripWholeFile) {
  const std::size_t n = 64 * 1024 + 123;
  auto f = safs_file::create("rt1", n);
  auto data = pattern(n, 1);
  f->write(0, n, data.data());
  std::vector<char> back(n);
  f->read(0, n, back.data());
  EXPECT_EQ(std::memcmp(data.data(), back.data(), n), 0);
}

TEST_F(SafsTest, RoundTripUnalignedRanges) {
  const std::size_t n = 40 * 1024;
  auto f = safs_file::create("rt2", n);
  auto data = pattern(n, 2);
  // Write in odd-sized pieces spanning stripe-unit boundaries.
  std::size_t off = 0;
  const std::size_t pieces[] = {1000, 5000, 4096, 12345, 100, 18419};
  for (std::size_t len : pieces) {
    f->write(off, len, data.data() + off);
    off += len;
  }
  ASSERT_EQ(off, n);
  std::vector<char> back(n);
  f->read(0, n, back.data());
  EXPECT_EQ(std::memcmp(data.data(), back.data(), n), 0);
}

TEST_F(SafsTest, RoundRobinPlacement) {
  const std::size_t n = 10 * 4096;
  auto f = safs_file::create("rr", n, stripe_placement::round_robin);
  auto data = pattern(n, 3);
  f->write(0, n, data.data());
  std::vector<char> back(n);
  f->read(0, n, back.data());
  EXPECT_EQ(std::memcmp(data.data(), back.data(), n), 0);
  EXPECT_EQ(f->num_stripes(), 3);
}

TEST_F(SafsTest, HashPlacementRoundTripManyUnits) {
  const std::size_t n = 257 * 4096;  // prime number of units
  auto f = safs_file::create("hash", n, stripe_placement::hash);
  auto data = pattern(n, 4);
  f->write(0, n, data.data());
  std::vector<char> back(n);
  f->read(0, n, back.data());
  EXPECT_EQ(std::memcmp(data.data(), back.data(), n), 0);
}

TEST_F(SafsTest, BackingFilesRemovedOnDestruction) {
  std::string path;
  {
    auto f = safs_file::create("gone", 4096);
    path = conf().em_dir + "/gone.stripe0";
    std::vector<char> d(4096, 7);
    f->write(0, 4096, d.data());
    EXPECT_EQ(::access(path.c_str(), F_OK), 0);
  }
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
}

TEST_F(SafsTest, AsyncReadWrite) {
  const std::size_t n = 128 * 1024;
  auto f = safs_file::create("async1", n);
  auto& aio = async_io::global();
  auto& pool = buffer_pool::global();

  auto data = pattern(n, 5);
  const std::size_t half = n / 2;
  for (int i = 0; i < 2; ++i) {
    auto buf = pool.get(half);
    std::memcpy(buf.data(), data.data() + static_cast<std::size_t>(i) * half,
                half);
    aio.submit_write(f, static_cast<std::size_t>(i) * half, half,
                     std::move(buf));
  }
  aio.drain_writes();

  std::vector<char> back(n);
  auto fut1 = aio.submit_read(f, 0, half, back.data());
  auto fut2 = aio.submit_read(f, half, half, back.data() + half);
  fut1.get();
  fut2.get();
  EXPECT_EQ(std::memcmp(data.data(), back.data(), n), 0);
}

TEST_F(SafsTest, IoStatsCountBytes) {
  auto& stats = io_stats::global();
  stats.reset();
  const std::size_t n = 32 * 1024;
  auto f = safs_file::create("stats", n);
  auto& aio = async_io::global();
  auto buf = buffer_pool::global().get(n);
  std::memset(buf.data(), 1, n);
  aio.submit_write(f, 0, n, std::move(buf));
  aio.drain_writes();
  std::vector<char> back(n);
  aio.submit_read(f, 0, n, back.data()).get();
  EXPECT_EQ(stats.write_bytes.load(), n);
  EXPECT_EQ(stats.read_bytes.load(), n);
  EXPECT_EQ(stats.write_ops.load(), 1u);
  EXPECT_EQ(stats.read_ops.load(), 1u);
}

TEST_F(SafsTest, ThrottleLimitsThroughput) {
  mutable_conf().io_throttle_mbps = 50.0;  // 50 MB/s
  io_throttle throttle;
  const std::size_t chunk = 1 << 20;  // 1 MB -> 20 ms at 50 MB/s
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 3; ++i) throttle.acquire(chunk);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  mutable_conf().io_throttle_mbps = 0.0;
  // 3 MB at 50 MB/s should take >= ~40 ms (first acquire may pass free).
  EXPECT_GE(secs, 0.035);
}

TEST_F(SafsTest, ZeroFillsUnwrittenHoles) {
  auto f = safs_file::create("hole", 8192);
  std::vector<char> back(4096, 42);
  f->read(4096, 4096, back.data());  // never written
  for (char c : back) EXPECT_EQ(c, 0);
}

}  // namespace
}  // namespace flashr
