// ML algorithm tests (DESIGN.md invariant 8): every algorithm is checked
// against a naive serial reference on small data, then against statistical
// ground truth on planted synthetic data — in memory and out of core.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "common/config.h"
#include "common/rng.h"
#include "core/dense_matrix.h"
#include "matrix/datasets.h"
#include "ml/gmm.h"
#include "ml/kmeans.h"
#include "ml/lbfgs.h"
#include "ml/lda.h"
#include "ml/logistic.h"
#include "ml/mvrnorm.h"
#include "ml/naive_bayes.h"
#include "ml/pca.h"
#include "ml/stats.h"

namespace flashr::ml {
namespace {

class MlTest : public ::testing::TestWithParam<storage> {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.num_threads = 4;
    o.io_part_rows = 256;
    o.pcache_bytes = 8192;
    init(o);
  }

  dense_matrix place(const dense_matrix& m) const {
    return GetParam() == storage::ext_mem ? conv_store(m, storage::ext_mem)
                                          : conv_store(m, storage::in_mem);
  }
};

smat host_random(std::size_t n, std::size_t p, std::uint64_t seed) {
  smat h(n, p);
  rng64 rng(seed);
  for (std::size_t j = 0; j < p; ++j)
    for (std::size_t i = 0; i < n; ++i) h(i, j) = rng.next_normal();
  return h;
}

// ---- Correlation / moments --------------------------------------------------

TEST_P(MlTest, CorrelationMatchesNaive) {
  const std::size_t n = 1500, p = 6;
  smat h = host_random(n, p, 1);
  for (std::size_t i = 0; i < n; ++i) h(i, 1) = 0.8 * h(i, 0) + 0.2 * h(i, 1);
  dense_matrix X = place(dense_matrix::from_smat(h));

  smat cor = correlation(X);
  // Naive reference.
  std::vector<double> mu(p, 0), sd(p, 0);
  for (std::size_t j = 0; j < p; ++j) {
    for (std::size_t i = 0; i < n; ++i) mu[j] += h(i, j);
    mu[j] /= static_cast<double>(n);
  }
  for (std::size_t a = 0; a < p; ++a)
    for (std::size_t b = 0; b < p; ++b) {
      double cab = 0, ca = 0, cb = 0;
      for (std::size_t i = 0; i < n; ++i) {
        cab += (h(i, a) - mu[a]) * (h(i, b) - mu[b]);
        ca += (h(i, a) - mu[a]) * (h(i, a) - mu[a]);
        cb += (h(i, b) - mu[b]) * (h(i, b) - mu[b]);
      }
      EXPECT_NEAR(cor(a, b), cab / std::sqrt(ca * cb), 1e-8);
    }
  EXPECT_GT(cor(0, 1), 0.9);  // the planted correlation
}

TEST_P(MlTest, MomentsSinglePass) {
  dense_matrix X = place(dense_matrix::runif(5000, 4, 0, 1, 11));
  moments m = compute_moments(X);
  EXPECT_EQ(m.n, 5000u);
  for (std::size_t j = 0; j < 4; ++j)
    EXPECT_NEAR(m.col_sums(0, j) / 5000.0, 0.5, 0.02);
  smat cov = covariance_from(m);
  for (std::size_t j = 0; j < 4; ++j)
    EXPECT_NEAR(cov(j, j), 1.0 / 12.0, 0.005);  // Var(U[0,1])
}

// ---- PCA ---------------------------------------------------------------------

TEST_P(MlTest, PcaRecoversPlantedSpectrum) {
  // Data with variance concentrated in the first two directions.
  const std::size_t n = 4000, p = 5;
  smat h(n, p);
  rng64 rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = 3.0 * rng.next_normal(), b = 1.5 * rng.next_normal();
    h(i, 0) = a;
    h(i, 1) = b;
    for (std::size_t j = 2; j < p; ++j) h(i, j) = 0.1 * rng.next_normal();
  }
  dense_matrix X = place(dense_matrix::from_smat(h));
  pca_result fit = pca(X);
  ASSERT_EQ(fit.eigenvalues.size(), p);
  EXPECT_NEAR(fit.eigenvalues[0], 9.0, 0.5);
  EXPECT_NEAR(fit.eigenvalues[1], 2.25, 0.2);
  EXPECT_LT(fit.eigenvalues[2], 0.05);
  // First PC aligned with e0.
  EXPECT_GT(std::abs(fit.rotation(0, 0)), 0.99);

  // Transformed data has per-component variance = eigenvalue and zero
  // cross-covariance.
  dense_matrix T = pca_transform(X, fit);
  moments tm = compute_moments(T);
  smat tcov = covariance_from(tm);
  for (std::size_t j = 0; j < p; ++j)
    EXPECT_NEAR(tcov(j, j), fit.eigenvalues[j], 1e-6);
  EXPECT_NEAR(tcov(0, 1), 0.0, 1e-6);
}

TEST_P(MlTest, PcaTruncatedComponents) {
  dense_matrix X = place(dense_matrix::rnorm(2000, 6, 0, 1, 5));
  pca_result fit = pca(X, 2);
  EXPECT_EQ(fit.rotation.ncol(), 2u);
  dense_matrix T = pca_transform(X, fit);
  EXPECT_EQ(T.ncol(), 2u);
}

// ---- Naive Bayes ---------------------------------------------------------------

TEST_P(MlTest, NaiveBayesRecoversPlantedGaussians) {
  const std::size_t n = 6000, p = 4, k = 3;
  smat h(n, p), lab(n, 1);
  rng64 rng(7);
  const double mu_shift[3] = {-3.0, 0.0, 3.0};
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % k;
    lab(i, 0) = static_cast<double>(c);
    for (std::size_t j = 0; j < p; ++j)
      h(i, j) = mu_shift[c] + rng.next_normal();
  }
  dense_matrix X = place(dense_matrix::from_smat(h));
  dense_matrix y = place(dense_matrix::from_smat(lab, scalar_type::i64));

  naive_bayes_model model = naive_bayes_train(X, y, k);
  for (std::size_t c = 0; c < k; ++c) {
    EXPECT_NEAR(model.priors[c], 1.0 / 3.0, 0.01);
    for (std::size_t j = 0; j < p; ++j) {
      EXPECT_NEAR(model.means(c, j), mu_shift[c], 0.1);
      EXPECT_NEAR(model.vars(c, j), 1.0, 0.15);
    }
  }
  dense_matrix pred = naive_bayes_predict(X, model);
  EXPECT_GT(accuracy(pred, y), 0.95);
}

TEST_P(MlTest, NaiveBayesMatchesHandComputedOnTiny) {
  smat h = smat::from_rows(6, 1, {0, 1, 2, 10, 11, 12});
  smat lab = smat::from_rows(6, 1, {0, 0, 0, 1, 1, 1});
  dense_matrix X = dense_matrix::from_smat(h);
  dense_matrix y = dense_matrix::from_smat(lab, scalar_type::i64);
  naive_bayes_model m = naive_bayes_train(X, y, 2);
  EXPECT_NEAR(m.means(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(m.means(1, 0), 11.0, 1e-12);
  EXPECT_NEAR(m.vars(0, 0), 2.0 / 3.0, 1e-9);  // population variance
  EXPECT_NEAR(m.priors[0], 0.5, 1e-12);
}

// ---- LBFGS ---------------------------------------------------------------------

TEST(Lbfgs, MinimizesQuadratic) {
  // f(x) = sum (x_i - i)^2 with condition spread.
  auto f = [](const std::vector<double>& x, std::vector<double>& g) {
    double loss = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double scale = 1.0 + static_cast<double>(i);
      const double d = x[i] - static_cast<double>(i);
      loss += scale * d * d;
      g[i] = 2 * scale * d;
    }
    return loss;
  };
  lbfgs_result r = lbfgs_minimize(f, std::vector<double>(8, 0.0));
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(r.x[i], static_cast<double>(i), 1e-5);
}

TEST(Lbfgs, MinimizesRosenbrock) {
  auto f = [](const std::vector<double>& x, std::vector<double>& g) {
    const double a = x[0], b = x[1];
    g[0] = -2 * (1 - a) - 400 * a * (b - a * a);
    g[1] = 200 * (b - a * a);
    return (1 - a) * (1 - a) + 100 * (b - a * a) * (b - a * a);
  };
  lbfgs_options o;
  o.max_iters = 2000;
  o.loss_tol = 0;  // Rosenbrock's valley makes per-step progress tiny
  o.grad_tol = 1e-8;
  lbfgs_result r = lbfgs_minimize(f, {-1.2, 1.0}, o);
  EXPECT_NEAR(r.x[0], 1.0, 1e-4);
  EXPECT_NEAR(r.x[1], 1.0, 1e-4);
}

TEST(Lbfgs, LossHistoryMonotone) {
  auto f = [](const std::vector<double>& x, std::vector<double>& g) {
    double loss = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      loss += std::cosh(x[i] - 1.0);
      g[i] = std::sinh(x[i] - 1.0);
    }
    return loss;
  };
  lbfgs_result r = lbfgs_minimize(f, std::vector<double>(4, 3.0));
  for (std::size_t i = 1; i < r.loss_history.size(); ++i)
    EXPECT_LE(r.loss_history[i], r.loss_history[i - 1] + 1e-12);
}

// ---- Logistic regression --------------------------------------------------------

TEST_P(MlTest, LogisticRecoversPlantedWeights) {
  const std::size_t n = 8000, p = 3;
  smat h = host_random(n, p, 21);
  smat lab(n, 1);
  rng64 rng(22);
  const double w_true[3] = {1.5, -2.0, 0.5};
  const double b_true = 0.3;
  for (std::size_t i = 0; i < n; ++i) {
    double logit = b_true;
    for (std::size_t j = 0; j < p; ++j) logit += w_true[j] * h(i, j);
    lab(i, 0) = rng.next_uniform() < 1.0 / (1.0 + std::exp(-logit)) ? 1 : 0;
  }
  dense_matrix X = place(dense_matrix::from_smat(h));
  dense_matrix y = place(dense_matrix::from_smat(lab));

  logistic_model m = logistic_regression(X, y);
  for (std::size_t j = 0; j < p; ++j) EXPECT_NEAR(m.w(j, 0), w_true[j], 0.25);
  EXPECT_NEAR(m.w(p, 0), b_true, 0.25);  // intercept
  // Loss decreases and converges per the paper's 1e-6 criterion.
  ASSERT_GE(m.loss_history.size(), 2u);
  EXPECT_LT(m.loss_history.back(), m.loss_history.front());
  EXPECT_TRUE(m.converged);
  EXPECT_GT(accuracy(logistic_predict(X, m), y), 0.8);
}

TEST_P(MlTest, LogisticLearnsCriteoLike) {
  labeled_data d = criteo_like(20000, 5);
  dense_matrix X = place(d.X), y = place(d.y);
  logistic_options o;
  o.max_iters = 30;
  logistic_model m = logistic_regression(X, y, o);
  const double base_rate = sum(y).scalar() / static_cast<double>(y.nrow());
  const double majority = std::max(base_rate, 1 - base_rate);
  EXPECT_GT(accuracy(logistic_predict(X, m), y), majority + 0.01);
}

// ---- k-means ---------------------------------------------------------------------

TEST_P(MlTest, KmeansSeparatesPlantedBlobs) {
  const std::size_t n = 6000, p = 4, k = 3;
  smat h(n, p), lab(n, 1);
  rng64 rng(31);
  const double centers[3][2] = {{8, 0}, {-8, 0}, {0, 8}};
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % 3;
    lab(i, 0) = static_cast<double>(c);
    h(i, 0) = centers[c][0] + rng.next_normal();
    h(i, 1) = centers[c][1] + rng.next_normal();
    h(i, 2) = rng.next_normal();
    h(i, 3) = rng.next_normal();
  }
  dense_matrix X = place(dense_matrix::from_smat(h));
  kmeans_result r = kmeans(X, k, {.max_iters = 50, .seed = 5});
  EXPECT_TRUE(r.converged);

  // Cluster purity against the planted labels (labels are permuted).
  smat got = r.assignments.to_smat();
  std::map<std::pair<int, int>, std::size_t> confusion;
  for (std::size_t i = 0; i < n; ++i)
    confusion[{static_cast<int>(lab(i, 0)), static_cast<int>(got(i, 0))}]++;
  std::size_t correct = 0;
  for (int c = 0; c < 3; ++c) {
    std::size_t best = 0;
    for (int g = 0; g < 3; ++g)
      best = std::max(best, confusion[{c, g}]);
    correct += best;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(n), 0.98);
}

TEST_P(MlTest, KmeansWcssDecreasesMonotonically) {
  labeled_data d = pagegraph_like(5000, 4, 17);
  dense_matrix X = place(d.X);
  // Track WCSS across iterations by running with increasing max_iters.
  double prev = 1e300;
  for (int iters = 1; iters <= 4; ++iters) {
    kmeans_result r = kmeans(X, 4, {.max_iters = iters, .seed = 9});
    EXPECT_LE(r.wcss, prev + 1e-6);
    prev = r.wcss;
  }
}

TEST_P(MlTest, KmeansOneClusterIsMean) {
  dense_matrix X = place(dense_matrix::rnorm(3000, 3, 2.0, 1.0, 41));
  kmeans_result r = kmeans(X, 1, {.max_iters = 3});
  smat mu = col_means(X).to_smat();
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(r.centers(0, j), mu(0, j), 1e-9);
}

// ---- GMM ------------------------------------------------------------------------

TEST_P(MlTest, GmmRecoversPlantedMixture) {
  const std::size_t n = 6000, p = 2;
  smat h(n, p);
  rng64 rng(51);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 4 == 0) {  // 25% component at (6, 6) with small variance
      h(i, 0) = 6 + 0.5 * rng.next_normal();
      h(i, 1) = 6 + 0.5 * rng.next_normal();
    } else {  // 75% component at (0, 0), unit variance
      h(i, 0) = rng.next_normal();
      h(i, 1) = rng.next_normal();
    }
  }
  dense_matrix X = place(dense_matrix::from_smat(h));
  gmm_result m = gmm_fit(X, 2, {.max_iters = 60, .seed = 3});

  // Identify which fitted component is the (6,6) blob.
  const std::size_t hi = m.means(0, 0) > m.means(1, 0) ? 0 : 1;
  const std::size_t lo = 1 - hi;
  EXPECT_NEAR(m.means(hi, 0), 6.0, 0.3);
  EXPECT_NEAR(m.means(hi, 1), 6.0, 0.3);
  EXPECT_NEAR(m.means(lo, 0), 0.0, 0.3);
  EXPECT_NEAR(m.weights[hi], 0.25, 0.05);
  EXPECT_NEAR(m.covariances[hi](0, 0), 0.25, 0.1);
  EXPECT_NEAR(m.covariances[lo](0, 0), 1.0, 0.2);

  // Mean log-likelihood is non-decreasing (EM guarantee).
  for (std::size_t i = 1; i < m.loglik_history.size(); ++i)
    EXPECT_GE(m.loglik_history[i], m.loglik_history[i - 1] - 1e-6);
}

TEST_P(MlTest, GmmPredictMatchesResponsibilities) {
  labeled_data d = pagegraph_like(3000, 3, 77);
  dense_matrix X = place(d.X);
  gmm_result m = gmm_fit(X, 3, {.max_iters = 20, .seed = 8});
  dense_matrix pred = gmm_predict(X, m);
  smat hp = pred.to_smat();
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_GE(hp(i, 0), 0);
    EXPECT_LT(hp(i, 0), 3);
  }
}

// ---- mvrnorm ---------------------------------------------------------------------

TEST_P(MlTest, MvrnormMatchesRequestedMoments) {
  const std::size_t n = 60000;
  smat mu = smat::from_rows(1, 3, {1.0, -2.0, 0.5});
  smat sigma = smat::from_rows(3, 3,
                               {2.0, 0.6, 0.0,
                                0.6, 1.0, -0.3,
                                0.0, -0.3, 0.5});
  dense_matrix X = mvrnorm(n, mu, sigma, 13);
  dense_matrix Xp = place(X);
  moments m = compute_moments(Xp);
  smat got_mu = means_from(m);
  smat got_cov = covariance_from(m);
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(got_mu(0, j), mu(0, j), 0.05);
  for (std::size_t a = 0; a < 3; ++a)
    for (std::size_t b = 0; b < 3; ++b)
      EXPECT_NEAR(got_cov(a, b), sigma(a, b), 0.06);
}

TEST(Mvrnorm, RejectsIndefiniteSigma) {
  smat mu(1, 2);
  smat sigma = smat::from_rows(2, 2, {1.0, 2.0, 2.0, 1.0});
  EXPECT_THROW(mvrnorm(100, mu, sigma), error);
}

// ---- LDA ------------------------------------------------------------------------

TEST_P(MlTest, LdaSeparatesPlantedClasses) {
  const std::size_t n = 6000, p = 4, k = 2;
  smat h(n, p), lab(n, 1);
  rng64 rng(61);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % 2;
    lab(i, 0) = static_cast<double>(c);
    // Shared covariance, different means along a diagonal direction.
    const double shift = c == 0 ? -1.5 : 1.5;
    for (std::size_t j = 0; j < p; ++j)
      h(i, j) = shift * (j < 2 ? 1.0 : 0.0) + rng.next_normal();
  }
  dense_matrix X = place(dense_matrix::from_smat(h));
  dense_matrix y = place(dense_matrix::from_smat(lab, scalar_type::i64));
  lda_model m = lda_train(X, y, k);

  EXPECT_NEAR(m.means(0, 0), -1.5, 0.1);
  EXPECT_NEAR(m.means(1, 0), 1.5, 0.1);
  EXPECT_NEAR(m.pooled_cov(0, 0), 1.0, 0.1);
  EXPECT_NEAR(m.pooled_cov(0, 1), 0.0, 0.1);
  EXPECT_GT(accuracy(lda_predict(X, m), y), 0.97);

  // The single discriminant axis lies along (1,1,0,0)/sqrt(2).
  ASSERT_EQ(m.scaling.ncol(), 1u);
  const double a0 = m.scaling(0, 0), a1 = m.scaling(1, 0);
  EXPECT_NEAR(std::abs(a0 / a1), 1.0, 0.15);
  EXPECT_GT(std::abs(a0), 10 * std::abs(m.scaling(2, 0)) - 1e-9);
}

TEST_P(MlTest, LdaPooledCovMatchesNaive) {
  const std::size_t n = 900, p = 3, k = 3;
  smat h = host_random(n, p, 71);
  smat lab(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    lab(i, 0) = static_cast<double>(i % k);
    h(i, 0) += static_cast<double>(i % k);
  }
  dense_matrix X = place(dense_matrix::from_smat(h));
  dense_matrix y = place(dense_matrix::from_smat(lab, scalar_type::i64));
  lda_model m = lda_train(X, y, k);

  // Naive pooled covariance.
  smat mu(k, p);
  std::vector<double> cnt(k, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(lab(i, 0));
    cnt[c] += 1;
    for (std::size_t j = 0; j < p; ++j) mu(c, j) += h(i, j);
  }
  for (std::size_t c = 0; c < k; ++c)
    for (std::size_t j = 0; j < p; ++j) mu(c, j) /= cnt[c];
  smat W(p, p);
  for (std::size_t i = 0; i < n; ++i) {
    const auto c = static_cast<std::size_t>(lab(i, 0));
    for (std::size_t a = 0; a < p; ++a)
      for (std::size_t b = 0; b < p; ++b)
        W(a, b) += (h(i, a) - mu(c, a)) * (h(i, b) - mu(c, b));
  }
  for (std::size_t a = 0; a < p; ++a)
    for (std::size_t b = 0; b < p; ++b)
      W(a, b) /= static_cast<double>(n - k);
  EXPECT_LT(m.pooled_cov.max_abs_diff(W), 1e-8);
}

// ---- Datasets ---------------------------------------------------------------------

TEST_P(MlTest, CriteoLikeShapesAndLabelRate) {
  labeled_data d = criteo_like(10000, 3);
  EXPECT_EQ(d.X.ncol(), 39u);
  EXPECT_EQ(d.X.nrow(), 10000u);
  const double rate = sum(d.y).scalar() / 10000.0;
  EXPECT_GT(rate, 0.02);
  EXPECT_LT(rate, 0.7);
  // Categorical columns are integral and within [0, 32).
  dense_matrix cats = select_cols(d.X, {20});
  EXPECT_GE(flashr::min(cats).scalar(), 0.0);
  EXPECT_LT(flashr::max(cats).scalar(), 32.0);
}

TEST_P(MlTest, PagegraphLikeClustersAreLearnable) {
  labeled_data d = pagegraph_like(4000, 4, 23);
  EXPECT_EQ(d.X.ncol(), 32u);
  ASSERT_TRUE(d.y.valid());
  // Labels are within range and the planted structure is recoverable well
  // above chance by k-means.
  dense_matrix X = place(d.X);
  kmeans_result r = kmeans(X, 4, {.max_iters = 30, .seed = 2});
  smat got = r.assignments.to_smat();
  smat lab = d.y.to_smat();
  std::map<std::pair<int, int>, std::size_t> confusion;
  for (std::size_t i = 0; i < 4000; ++i)
    confusion[{static_cast<int>(lab(i, 0)), static_cast<int>(got(i, 0))}]++;
  std::size_t correct = 0;
  for (int c = 0; c < 4; ++c) {
    std::size_t best = 0;
    for (int g = 0; g < 4; ++g) best = std::max(best, confusion[{c, g}]);
    correct += best;
  }
  EXPECT_GT(static_cast<double>(correct) / 4000.0, 0.6);
}

INSTANTIATE_TEST_SUITE_P(Storages, MlTest,
                         ::testing::Values(storage::in_mem, storage::ext_mem),
                         [](const ::testing::TestParamInfo<storage>& i) {
                           return i.param == storage::in_mem ? "im" : "em";
                         });

}  // namespace
}  // namespace flashr::ml
