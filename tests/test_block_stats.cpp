// Block-matrix statistics: moments/correlation over the 32-column block
// decomposition must match the monolithic path exactly, and fuse into one
// pass over the data.
#include <gtest/gtest.h>

#include "common/config.h"
#include "core/dense_matrix.h"
#include "io/safs.h"
#include "matrix/block_matrix.h"
#include "matrix/datasets.h"
#include "ml/kmeans.h"
#include "ml/stats.h"

namespace flashr::ml {
namespace {

class BlockStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.io_part_rows = 128;
    o.small_nrow_threshold = 32;
    init(o);
  }
};

TEST_F(BlockStatsTest, BlockMomentsMatchMonolithic) {
  dense_matrix wide = conv_store(dense_matrix::rnorm(2000, 70, 1, 2, 3),
                                 storage::in_mem);
  block_matrix bm(wide);
  moments mono = compute_moments(wide);
  moments blocked = compute_moments(bm);
  EXPECT_EQ(blocked.n, mono.n);
  EXPECT_LT(blocked.col_sums.max_abs_diff(mono.col_sums), 1e-8);
  EXPECT_LT(blocked.gram.max_abs_diff(mono.gram), 1e-6);
}

TEST_F(BlockStatsTest, BlockCorrelationMatchesMonolithic) {
  dense_matrix wide = conv_store(dense_matrix::rnorm(1500, 48, 0, 1, 5),
                                 storage::ext_mem);
  block_matrix bm(wide);
  smat mono = correlation(wide);
  smat blocked = correlation(bm);
  EXPECT_LT(blocked.max_abs_diff(mono), 1e-9);
  for (std::size_t j = 0; j < 48; ++j)
    EXPECT_NEAR(blocked(j, j), 1.0, 1e-12);
}

TEST_F(BlockStatsTest, BlockMomentsAreOnePass) {
  dense_matrix wide = conv_store(dense_matrix::rnorm(128 * 6, 64, 0, 1, 7),
                                 storage::ext_mem);
  block_matrix bm(wide);
  io_stats::global().reset();
  compute_moments(bm);
  // 2 blocks -> 3 Gramian sinks + 2 colSums sinks; each byte read once.
  EXPECT_EQ(io_stats::global().read_bytes.load(),
            128u * 6u * 64u * sizeof(double));
}

TEST_F(BlockStatsTest, KmeansWithoutCachingConvergesIdentically) {
  labeled_data d = pagegraph_like(3000, 3, 9);
  dense_matrix X = conv_store(d.X, storage::in_mem);
  kmeans_options with_cache;
  with_cache.max_iters = 15;
  with_cache.seed = 4;
  kmeans_options without = with_cache;
  without.cache_assignments = false;
  kmeans_result a = kmeans(X, 3, with_cache);
  kmeans_result b = kmeans(X, 3, without);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.centers.max_abs_diff(b.centers), 0.0);
  EXPECT_EQ(a.moves_history, b.moves_history);
}

}  // namespace
}  // namespace flashr::ml
