// Runtime lock-rank checker tests (common/thread_safety.h,
// common/lock_rank.cpp): a seeded rank inversion and a recursive lock must
// abort with their diagnostics, the gate must keep the checker silent when
// invariants are off, and — the real bar — a full engine pass in every
// execution mode plus a concurrent governor/stats-server scrape must run
// clean with the checker enabled, proving the declared rank table matches
// the locks the engine actually takes.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "common/check.h"
#include "common/config.h"
#include "common/thread_safety.h"
#include "core/dense_matrix.h"
#include "core/governor.h"
#include "obs/stats_server.h"

namespace flashr {
namespace {

TEST(LockRankDeathTest, InversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        invariant_scope on;
        mutex low LOCK_RANK(governor);
        mutex high LOCK_RANK(metrics_registry);
        mutex_lock outer(high);
        mutex_lock inner(low);  // 300 acquired under 700
      },
      "lock rank inversion");
}

TEST(LockRankDeathTest, EqualRankAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        invariant_scope on;
        mutex a LOCK_RANK(buffer_pool);
        mutex b LOCK_RANK(buffer_pool);  // same rank: no order between them
        mutex_lock outer(a);
        mutex_lock inner(b);
      },
      "lock rank inversion");
}

TEST(LockRankDeathTest, RecursiveLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        invariant_scope on;
        mutex m LOCK_RANK(governor);
        m.lock();
        m.lock();  // same mutex, same thread
      },
      "recursive lock");
}

TEST(LockRank, GateOffIsSilent) {
  // Without the invariant gate the checker must cost nothing and tolerate
  // any order (release builds run with it off).
  mutex low LOCK_RANK(governor);
  mutex high LOCK_RANK(metrics_registry);
  {
    mutex_lock outer(high);
    mutex_lock inner(low);  // inverted, but unchecked
  }
  SUCCEED();
}

TEST(LockRank, IntrospectionTracksHeldRanks) {
  invariant_scope on;
  mutex low LOCK_RANK(governor);
  mutex high LOCK_RANK(metrics_registry);
  EXPECT_EQ(low.rank(), lock_rank::governor.value);
  EXPECT_EQ(high.rank(), lock_rank::metrics_registry.value);
  EXPECT_EQ(mutex{}.rank(), 0);  // unranked test scaffolding

  int held[16];
  EXPECT_EQ(detail::held_ranks(held, 16), 0);
  {
    mutex_lock outer(low);
    mutex_lock inner(high);
    ASSERT_EQ(detail::held_ranks(held, 16), 2);
    EXPECT_EQ(held[0], lock_rank::governor.value);
    EXPECT_EQ(held[1], lock_rank::metrics_registry.value);
  }
  EXPECT_EQ(detail::held_ranks(held, 16), 0);
}

TEST(LockRank, TryLockParticipates) {
  invariant_scope on;
  mutex m LOCK_RANK(governor);
  ASSERT_TRUE(m.try_lock());
  int held[16];
  EXPECT_EQ(detail::held_ranks(held, 16), 1);
  EXPECT_EQ(held[0], lock_rank::governor.value);
  m.unlock();
  EXPECT_EQ(detail::held_ranks(held, 16), 0);
}

// --- Whole-engine clean passes under the checker ---------------------------

class LockRankEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.num_threads = 4;
    o.io_part_rows = 128;
    init(o);
  }

  static smat weights() {
    smat w(4, 3);
    for (std::size_t j = 0; j < 3; ++j)
      for (std::size_t i = 0; i < 4; ++i)
        w(i, j) = static_cast<double>(i + 1) * (j + 1);
    return w;
  }

  // One full pass: external-memory input so the prefetch pipeline, the
  // async-I/O queue, the buffer pool, the governor and the metrics layer
  // all take their locks while the rank checker watches.
  void run_pass() {
    dense_matrix x = dense_matrix::runif(600, 4, -1, 1, /*seed=*/11);
    x = conv_store(x, storage::ext_mem);
    smat got = matmul(x, dense_matrix::from_smat(weights())).to_smat();
    ASSERT_EQ(got.nrow(), 600u);
  }
};

TEST_F(LockRankEngineTest, CleanPassInEveryMode) {
  invariant_scope on;
  for (exec_mode m :
       {exec_mode::eager, exec_mode::mem_fuse, exec_mode::cache_fuse}) {
    mutable_conf().mode = m;
    run_pass();
  }
  mutable_conf().mode = exec_mode::cache_fuse;
}

TEST_F(LockRankEngineTest, ConcurrentGovernorAndScrape) {
  // The deepest rank chains in the tree meet here: the engine pass nests
  // pass locks -> governor -> prefetch window -> async queue -> pool ->
  // metrics/trace, while the scraper walks http -> metrics -> governor
  // probes. With the checker on, any undeclared edge aborts.
  invariant_scope on;
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string resp = obs::stats_server::http_response("/metrics");
      ASSERT_FALSE(resp.empty());
    }
  });
  for (int i = 0; i < 3; ++i) run_pass();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
}

}  // namespace
}  // namespace flashr
