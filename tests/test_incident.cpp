// Incident-diagnostics tests (obs/incident.h, obs/crash_handler.h): the
// black-box post-mortem path must survive every exit the engine has.
//
//  * pass_stats::to_json() parity — the X-macro expansion guarantees every
//    struct field is a JSON key, so /passes and incident bundles can never
//    silently lag the struct again (zero_copy_chunks, degrade_steps and
//    degrade_path once did).
//  * A manual trigger, a SIGUSR2, and a watchdog trip (all three exec
//    modes) each produce a bundle with every required section.
//  * Abort paths (lock-rank inversion, invariant-validator failure) and a
//    real SIGSEGV in a forked child each leave a raw crash-*.bin dump that
//    reassemble_crash_dump() turns into a complete JSON post-mortem — the
//    same files tools/check_incident.py validates in CI.
//  * The live views (/debug/flight, /debug/stacks, /debug/incidents) return
//    well-formed JSON and the fetch path refuses traversal.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include <dirent.h>

#include "common/check.h"
#include "common/config.h"
#include "common/error.h"
#include "common/thread_safety.h"
#include "core/dense_matrix.h"
#include "core/exec.h"
#include "core/validate.h"
#include "io/fault.h"
#include "mem/buffer_pool.h"
#include "obs/crash_handler.h"
#include "obs/incident.h"
#include "obs/metrics.h"

namespace flashr {
namespace {

std::uint64_t metric(const char* name) {
  return obs::metrics_registry::global().value(name);
}

std::vector<std::string> dir_entries(const std::string& dir,
                                     const std::string& prefix) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.rfind(prefix, 0) == 0) out.push_back(name);
  }
  ::closedir(d);
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Fresh empty incident directory for one test.
std::string fresh_dir(const char* tag) {
  std::string dir = std::string("/tmp/flashr_test_incident_") + tag;
  ::system(("rm -rf " + dir).c_str());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

/// Poll `dir` until a file with `prefix` whose name contains `substr`
/// appears (the monitor thread composes bundles asynchronously; an
/// escalation may land sibling bundles of other kinds first). 10s is orders
/// of magnitude of slack over the 250ms trigger-pipe poll.
std::string wait_for_file(const std::string& dir, const std::string& prefix,
                          const std::string& substr = "") {
  for (int i = 0; i < 400; ++i) {
    for (const std::string& name : dir_entries(dir, prefix))
      if (substr.empty() || name.find(substr) != std::string::npos)
        return name;
    ::usleep(25 * 1000);
  }
  return "";
}

void small_init(exec_mode mode = exec_mode::cache_fuse) {
  options o;
  o.em_dir = "/tmp/flashr_test_em";
  o.num_threads = 4;
  o.io_part_rows = 64;
  o.pcache_bytes = 2048;
  o.small_nrow_threshold = 16;
  o.mode = mode;
  init(o);
  fault_injector::global().clear();
}

dense_matrix small_em_input() {
  smat h(1000, 7);
  for (std::size_t j = 0; j < 7; ++j)
    for (std::size_t i = 0; i < 1000; ++i)
      h(i, j) = 0.5 * static_cast<double>(i) - 1.25 * static_cast<double>(j);
  return conv_store(dense_matrix::from_smat(h), storage::ext_mem);
}

// ---------------------------------------------------------------------------
// pass_stats struct-field <-> JSON-key parity
// ---------------------------------------------------------------------------

// Every numeric field named by FLASHR_PASS_STATS_FIELDS must appear in
// to_json() with its exact value, plus degrade_path, and nothing else: the
// key count is pinned so a field added to the struct without extending the
// X-macro (which the static_assert in exec.h already rejects) — or a key
// typo in a future rewrite — fails here instead of silently dropping data
// from /passes and incident bundles.
TEST(PassStatsJson, FieldKeyParity) {
  exec::pass_stats s;
  // Distinct, recognisable values per field, in declaration order.
  std::uint64_t v = 1000;
#define FLASHR_SET_FIELD(f) s.f = static_cast<decltype(s.f)>(++v);
  FLASHR_PASS_STATS_FIELDS(FLASHR_SET_FIELD)
#undef FLASHR_SET_FIELD
  s.degrade_path = "depth:8->4,chunk:2048->1024";
  const std::string json = s.to_json();

  std::size_t fields = 0;
  v = 1000;
#define FLASHR_CHECK_FIELD(f)                                              \
  ++fields;                                                                \
  EXPECT_NE(json.find("\"" #f "\": " + std::to_string(++v)),               \
            std::string::npos)                                             \
      << #f << " missing or wrong in " << json;
  FLASHR_PASS_STATS_FIELDS(FLASHR_CHECK_FIELD)
#undef FLASHR_CHECK_FIELD
  EXPECT_NE(json.find("\"degrade_path\": \"depth:8->4,chunk:2048->1024\""),
            std::string::npos)
      << json;

  // Exactly one JSON key per numeric field + degrade_path.
  std::size_t keys = 0;
  for (std::size_t pos = json.find('"'); pos != std::string::npos;
       pos = json.find('"', pos + 1)) {
    ++keys;
  }
  // Keys are quoted twice; degrade_path's value adds one more quoted string.
  EXPECT_EQ(keys, (fields + 1) * 2 + 2) << json;
}

// ---------------------------------------------------------------------------
// Bundle writer and live views
// ---------------------------------------------------------------------------

TEST(IncidentBundle, ManualBundleHasEverySection) {
  small_init();
  const std::string dir = fresh_dir("manual");
  ASSERT_TRUE(obs::incident_arm(dir));

  // Real engine activity so the flight tail and pass table are non-trivial.
  dense_matrix x = small_em_input();
  (void)(x * 2.0 + 1.0).to_smat();

  const std::uint64_t bundles0 = metric("incident.bundles");
  const std::string name =
      obs::incident_write_bundle(obs::incident_kind::manual, "unit test");
  ASSERT_FALSE(name.empty());
  EXPECT_EQ(name.rfind("incident-", 0), 0u) << name;
  EXPECT_NE(name.find("-manual.json"), std::string::npos) << name;
  EXPECT_GE(metric("incident.bundles"), bundles0 + 1);

  const std::string body = slurp(dir + "/" + name);
  for (const char* section :
       {"\"schema\"", "\"trigger\"", "\"time\"", "\"build\"", "\"config\"",
        "\"flight\"", "\"stacks\"", "\"passes\"", "\"governor\"",
        "\"io_backend\"", "\"metrics\"", "\"log_tail\""}) {
    EXPECT_NE(body.find(section), std::string::npos)
        << section << " missing from " << name;
  }
  EXPECT_NE(body.find("flashr-incident-v1"), std::string::npos);
  EXPECT_NE(body.find("unit test"), std::string::npos);

  // The live views agree with what the bundle embeds.
  EXPECT_NE(obs::flight_json(0).find("\"threads\""), std::string::npos);
  EXPECT_NE(obs::stacks_json().find("\"ranks\""), std::string::npos);
  const std::string list = obs::incidents_list_json();
  EXPECT_NE(list.find(name), std::string::npos) << list;
  EXPECT_FALSE(obs::incident_fetch(name).empty());
  EXPECT_TRUE(obs::incident_fetch("../../../etc/passwd").empty());
  EXPECT_TRUE(obs::incident_fetch("nope/../" + name).empty());

  obs::incident_disarm();
}

TEST(IncidentBundle, Sigusr2TriggersBundle) {
  small_init();
  const std::string dir = fresh_dir("sigusr2");
  ASSERT_TRUE(obs::incident_arm(dir));
  const std::uint64_t req0 = metric("incident.requests");

  ASSERT_EQ(::raise(SIGUSR2), 0);

  const std::string name = wait_for_file(dir, "incident-");
  ASSERT_FALSE(name.empty()) << "no bundle after SIGUSR2";
  EXPECT_NE(name.find("-manual.json"), std::string::npos) << name;
  EXPECT_GE(metric("incident.requests"), req0 + 1);
  const std::string body = slurp(dir + "/" + name);
  EXPECT_NE(body.find("SIGUSR2"), std::string::npos);
  obs::incident_disarm();
}

// A watchdog trip (stalled completions, io/fault.h `stall` site) must file
// an incident and the monitor must land a validated bundle — in every
// execution mode, since the trip fires from mode-specific pass loops.
TEST(IncidentBundle, WatchdogTripWritesBundleInEveryMode) {
  const exec_mode modes[] = {exec_mode::eager, exec_mode::mem_fuse,
                             exec_mode::cache_fuse};
  for (exec_mode mode : modes) {
    small_init(mode);
    const std::string dir =
        fresh_dir((std::string("wd_") + exec_mode_name(mode)).c_str());
    ASSERT_TRUE(obs::incident_arm(dir));
    mutable_conf().watchdog_stall_ms = 50;

    dense_matrix x = small_em_input();
    {
      fault_plan p;
      p.seed = 90;
      p.stall_prob = 1.0;
      p.stall_us = 150000;
      fault_scope scope(p);
      try {
        dense_matrix y = x + 1.0;
        y.materialize(storage::in_mem);
        FAIL() << "expected timeout_error in " << exec_mode_name(mode);
      } catch (const timeout_error&) {
      }
    }

    const std::string name = wait_for_file(dir, "incident-", "watchdog-trip");
    ASSERT_FALSE(name.empty())
        << "no bundle after watchdog trip in " << exec_mode_name(mode);
    const std::string body = slurp(dir + "/" + name);
    EXPECT_NE(body.find("\"governor\""), std::string::npos);
    EXPECT_NE(body.find("\"flight\""), std::string::npos);
    obs::incident_disarm();
  }
}

TEST(IncidentBundle, BundleCountStaysBounded) {
  small_init();
  mutable_conf().incident_max_bundles = 3;
  const std::string dir = fresh_dir("prune");
  ASSERT_TRUE(obs::incident_arm(dir));
  for (int i = 0; i < 6; ++i)
    ASSERT_FALSE(
        obs::incident_write_bundle(obs::incident_kind::manual, "prune")
            .empty());
  EXPECT_LE(dir_entries(dir, "incident-").size(), 3u);
  obs::incident_disarm();
}

// ---------------------------------------------------------------------------
// Abort and crash paths: the raw dump + offline reassembly
// ---------------------------------------------------------------------------

// Death-test children re-exec the binary with the parent's environment, so
// exporting FLASHR_INCIDENT_DIR here makes the child's config init arm the
// crash handler; the abort then writes crash-*.bin, which the parent
// reassembles — asserting the exact artifact CI validates.
class CrashDumpDeathTest : public ::testing::Test {
 protected:
  void arm_env(const char* tag) {
    dir_ = fresh_dir(tag);
    ::setenv("FLASHR_INCIDENT_DIR", dir_.c_str(), 1);
  }
  void TearDown() override { ::unsetenv("FLASHR_INCIDENT_DIR"); }

  /// Reassembled JSON of the single crash dump the child left behind.
  std::string reassembled() {
    std::vector<std::string> dumps = dir_entries(dir_, "crash-");
    EXPECT_EQ(dumps.size(), 1u) << "expected exactly one crash dump";
    if (dumps.empty()) return "";
    return obs::reassemble_crash_dump(dir_ + "/" + dumps.front());
  }

  std::string dir_;
};

TEST_F(CrashDumpDeathTest, LockRankAbortLeavesCompleteDump) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  arm_env("lockrank");
  EXPECT_DEATH(
      {
        conf();  // lazy init reads FLASHR_INCIDENT_DIR and arms
        invariant_scope on;
        mutex low LOCK_RANK(governor);
        mutex high LOCK_RANK(metrics_registry);
        mutex_lock outer(high);
        mutex_lock inner(low);  // 300 acquired under 700
      },
      "lock rank inversion");
  const std::string json = reassembled();
  EXPECT_NE(json.find("flashr-crash-v1"), std::string::npos);
  EXPECT_NE(json.find("\"complete\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("lock rank inversion"), std::string::npos) << json;
  // The crashed thread's held ranks made it into the dump: it held
  // metrics_registry (700) — and the inverted governor lock (300) was noted
  // before the checker fired.
  EXPECT_NE(json.find("\"held_ranks\""), std::string::npos);
  EXPECT_NE(json.find("700"), std::string::npos) << json;
}

TEST_F(CrashDumpDeathTest, InvariantAbortLeavesCompleteDump) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  arm_env("invariant");
  EXPECT_DEATH(
      {
        conf();
        invariant_scope on;
        buffer_pool pool;
        pool_debug::seed_double_return(pool);
      },
      "pool buffer returned twice");
  const std::string json = reassembled();
  EXPECT_NE(json.find("flashr-crash-v1"), std::string::npos);
  EXPECT_NE(json.find("\"complete\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("returned twice"), std::string::npos) << json;
}

// A real SIGSEGV in a forked child: the child inherits the armed handler
// and pre-opened dump fd, dies by signal with no atexit/flush help, and
// the parent reassembles the raw dump it left. This is the honest version
// of the crash story — nothing in the child's death path may allocate,
// lock or log (the analyzer enforces it statically; this test proves the
// dump survives the real signal).
TEST(CrashDump, SigsegvInForkedChildReassembles) {
  small_init();
  const std::string dir = fresh_dir("sigsegv");
  ASSERT_TRUE(obs::incident_arm(dir));
  // Engine activity so the child's inherited flight rings hold real events.
  dense_matrix x = small_em_input();
  (void)(x + 1.0).to_smat();
  // Let the monitor stage STAT/METR static sections at least once.
  ::usleep(300 * 1000);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: die exactly as a stray pointer would kill us.
    ::raise(SIGSEGV);
    ::_exit(97);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  std::vector<std::string> dumps = dir_entries(dir, "crash-");
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_NE(dumps.front().find("sig11"), std::string::npos) << dumps.front();
  const std::string json = obs::reassemble_crash_dump(dir + "/" + dumps.front());
  EXPECT_NE(json.find("flashr-crash-v1"), std::string::npos);
  EXPECT_NE(json.find("\"signal\":11"), std::string::npos) << json;
  EXPECT_NE(json.find("\"complete\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"flight\""), std::string::npos);
  // The fetch path serves the reassembled view of .bin dumps too.
  EXPECT_FALSE(obs::incident_fetch(dumps.front()).empty());
  obs::incident_disarm();
}

}  // namespace
}  // namespace flashr
