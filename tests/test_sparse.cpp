// Sparse substrate tests: CSR construction, graph generation, in-memory SpMM
// against a dense reference, and the semi-external-memory SpMM against the
// in-memory one (it must be bit-identical — same accumulation order per row).
#include <gtest/gtest.h>

#include <cmath>

#include "common/config.h"
#include "common/rng.h"
#include "io/safs.h"
#include "sparse/csr.h"
#include "sparse/sem_spmm.h"

namespace flashr::sparse {
namespace {

class SparseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.num_threads = 4;
    init(o);
  }
};

TEST_F(SparseTest, FromTripletsBasics) {
  csr_matrix m = csr_matrix::from_triplets(
      3, 4, {{0, 1, 2.0}, {2, 3, 5.0}, {0, 0, 1.0}, {1, 2, -1.0}});
  EXPECT_EQ(m.nnz(), 4u);
  EXPECT_EQ(m.at(0, 0), 1.0);
  EXPECT_EQ(m.at(0, 1), 2.0);
  EXPECT_EQ(m.at(1, 2), -1.0);
  EXPECT_EQ(m.at(2, 3), 5.0);
  EXPECT_EQ(m.at(2, 0), 0.0);
}

TEST_F(SparseTest, DuplicateTripletsMerge) {
  csr_matrix m =
      csr_matrix::from_triplets(2, 2, {{0, 0, 1.0}, {0, 0, 2.5}, {1, 1, 1.0}});
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_EQ(m.at(0, 0), 3.5);
}

TEST_F(SparseTest, SpmmMatchesDense) {
  const std::size_t n = 500;
  csr_matrix g = csr_matrix::random_graph(n, 8.0, 3);
  smat d(n, 4);
  rng64 rng(4);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < n; ++i) d(i, j) = rng.next_normal();
  smat got = g.spmm(d);
  // Dense reference.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      double e = 0;
      for (std::size_t c = 0; c < n; ++c) e += g.at(i, c) * d(c, j);
      ASSERT_NEAR(got(i, j), e, 1e-9) << i << "," << j;
    }
}

TEST_F(SparseTest, RowNormalizeMakesStochastic) {
  csr_matrix g = csr_matrix::random_graph(300, 5.0, 7);
  g.row_normalize();
  smat ones(300, 1, 1.0);
  smat row_sums = g.spmm(ones);
  for (std::size_t i = 0; i < 300; ++i) {
    // Rows with outgoing edges sum to 1; empty rows to 0.
    EXPECT_TRUE(std::abs(row_sums(i, 0) - 1.0) < 1e-9 ||
                row_sums(i, 0) == 0.0);
  }
}

TEST_F(SparseTest, SemSpmmMatchesInMemory) {
  const std::size_t n = 2000;
  csr_matrix g = csr_matrix::random_graph(n, 10.0, 11);
  smat d(n, 3);
  rng64 rng(12);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < n; ++i) d(i, j) = rng.next_normal();

  auto em = em_csr::create(g, /*rows_per_block=*/256);
  EXPECT_EQ(em->nnz(), g.nnz());
  EXPECT_GT(em->num_blocks(), 4u);
  smat got = em->spmm(d);
  smat ref = g.spmm(d);
  EXPECT_EQ(got.max_abs_diff(ref), 0.0);  // identical accumulation order
}

TEST_F(SparseTest, SemSpmmStreamsOnce) {
  const std::size_t n = 3000;
  csr_matrix g = csr_matrix::random_graph(n, 6.0, 13);
  auto em = em_csr::create(g, 512);
  smat d(n, 2, 1.0);
  io_stats::global().reset();
  em->spmm(d);
  EXPECT_EQ(io_stats::global().read_ops.load(), em->num_blocks());
}

TEST_F(SparseTest, PowerIterationConverges) {
  // PageRank-style power iteration on the EM matrix: the dominant left
  // eigenvector of a stochastic matrix has eigenvalue 1.
  const std::size_t n = 1000;
  csr_matrix g = csr_matrix::random_graph(n, 8.0, 17);
  g.row_normalize();
  auto em = em_csr::create(g, 256);

  smat v(n, 1, 1.0 / static_cast<double>(n));
  const double damp = 0.85;
  for (int it = 0; it < 30; ++it) {
    // v' = damp * P^T v + (1-damp)/n: we iterate with P (row-stochastic) on
    // column vectors, i.e. v' = damp * (P %*% v) + teleport, which converges
    // to the dominant eigenvector of the damped operator.
    smat pv = em->spmm(v);
    double norm = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v(i, 0) = damp * pv(i, 0) + (1.0 - damp) / static_cast<double>(n);
      norm += v(i, 0);
    }
    for (std::size_t i = 0; i < n; ++i) v(i, 0) /= norm;
  }
  // Fixed point check: one more application changes v very little.
  smat pv = em->spmm(v);
  double drift = 0, norm = 0;
  smat v2(n, 1);
  for (std::size_t i = 0; i < n; ++i)
    v2(i, 0) = damp * pv(i, 0) + (1.0 - damp) / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) norm += v2(i, 0);
  for (std::size_t i = 0; i < n; ++i)
    drift = std::max(drift, std::abs(v2(i, 0) / norm - v(i, 0)));
  EXPECT_LT(drift, 1e-6);
}

}  // namespace
}  // namespace flashr::sparse
