// Death tests for the debug invariant validator (common/check.h,
// core/validate.h): each seeded buffer-pool lifecycle violation must abort
// with its diagnostic, the DAG validator must reject a structurally broken
// node, and a clean full-DAG pass must produce zero false positives with the
// validator enabled in every execution mode.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/config.h"
#include "core/dense_matrix.h"
#include "core/exec.h"
#include "core/validate.h"
#include "core/virtual_store.h"
#include "mem/buffer_pool.h"

namespace flashr {
namespace {

// --- Buffer-pool lifecycle seams ------------------------------------------
//
// Each seam runs against a private pool inside the death-test child, with
// the validator enabled only inside the child, so the parent's global pool
// is never corrupted.

TEST(InvariantDeathTest, DoubleReturnAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        invariant_scope on;
        buffer_pool pool;
        pool_debug::seed_double_return(pool);
      },
      "pool buffer returned twice");
}

TEST(InvariantDeathTest, RefcountUnderflowAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        invariant_scope on;
        buffer_pool pool;
        pool_debug::seed_refcount_underflow(pool);
      },
      "never handed out");
}

TEST(InvariantDeathTest, UseAfterReturnAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        invariant_scope on;
        buffer_pool pool;
        pool_debug::seed_use_after_return(pool);
      },
      "use-after-return");
}

TEST(InvariantDeathTest, MisalignedBufferAborts) {
  // The 4 KiB alignment contract backs O_DIRECT and the uring backend's
  // registered-buffer (READ_FIXED) path; a corrupted free-list pointer must
  // abort at get() instead of corrupting I/O silently.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        invariant_scope on;
        buffer_pool pool;
        pool_debug::seed_misaligned_buffer(pool);
      },
      "misaligned buffer");
}

// With the validator off the check must be silent: the checks are opt-in and
// the default build pays only a branch. Only the use-after-return seam leaves
// the pool destructible (the other two corrupt the free list for real).
TEST(InvariantDeathTest, SeamSilentWhenDisabled) {
  if (kInvariantBuild) GTEST_SKIP() << "validator forced on at compile time";
  buffer_pool pool;
  pool_debug::seed_use_after_return(pool);
}

// --- DAG structural validation --------------------------------------------

TEST(InvariantDeathTest, MalformedDagAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A sapply node claiming a different ncol than its child: elementwise ops
  // must preserve ncol. Built directly with virtual_store::make because the
  // public GenOp API never constructs such a node.
  dense_matrix leaf = dense_matrix::rnorm(128, 4, 0, 1, 11);
  part_geom bad = leaf.store()->geom();
  bad.ncol = 3;
  genop op;
  op.kind = node_kind::sapply;
  op.u = uop_id::neg;
  auto broken = virtual_store::make(bad, scalar_type::f64, op, {leaf.store()});
  EXPECT_DEATH(
      {
        invariant_scope on;
        dense_matrix(broken).materialize();
      },
      "elementwise op must preserve ncol");
}

TEST(InvariantDeathTest, DanglingChildAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  dense_matrix leaf = dense_matrix::rnorm(128, 4, 0, 1, 13);
  genop op;
  op.kind = node_kind::map2;
  op.b = bop_id::add;
  auto broken = virtual_store::make(leaf.store()->geom(), scalar_type::f64,
                                    op, {leaf.store(), nullptr});
  EXPECT_DEATH(
      {
        invariant_scope on;
        dense_matrix(broken).materialize();
      },
      "dangling child");
}

// --- Clean passes: zero false positives -----------------------------------
//
// A representative DAG (elementwise chain, broadcast, sweep, inner product,
// sinks, an external-memory leaf) materialized with the validator enabled in
// each execution mode. Any spurious DCHECK/pool-audit/DAG failure aborts the
// whole test binary, so merely finishing is the assertion; the value checks
// guard against the validator perturbing results.
class InvariantCleanPassTest : public ::testing::TestWithParam<exec_mode> {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.io_part_rows = 64;
    o.pcache_bytes = 1024;
    o.small_nrow_threshold = 16;
    o.mode = GetParam();
    init(o);
  }
};

TEST_P(InvariantCleanPassTest, FullDagHasNoFalsePositives) {
  invariant_scope on;
  const std::size_t n = 64 * 5 + 17;  // short last partition
  dense_matrix x = dense_matrix::rnorm(n, 3, 0, 1, 42);
  dense_matrix em = conv_store(dense_matrix::rnorm(n, 3, 2, 1, 7),
                               storage::ext_mem);
  dense_matrix y = abs(x * 2.0 + em) + 1.0;
  dense_matrix z =
      sweep_cols(y, col_sums(y) / static_cast<double>(n), bop_id::div);
  dense_matrix g = crossprod(z);  // t(z) %*% z sink
  dense_matrix s = sum(z);
  materialize_all({z, g, s});

  EXPECT_TRUE(std::isfinite(s.scalar()));
  smat gm = g.to_smat();
  ASSERT_EQ(gm.nrow(), 3u);
  ASSERT_EQ(gm.ncol(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(gm(i, j), gm(j, i), 1e-9);

  // Re-materializing an already-materialized DAG must also be clean (the
  // resolved nodes become leaves).
  dense_matrix again = sum(z * z);
  EXPECT_TRUE(std::isfinite(again.scalar()));
}

INSTANTIATE_TEST_SUITE_P(AllModes, InvariantCleanPassTest,
                         ::testing::Values(exec_mode::eager,
                                           exec_mode::mem_fuse,
                                           exec_mode::cache_fuse),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case exec_mode::eager: return "eager";
                             case exec_mode::mem_fuse: return "mem_fuse";
                             default: return "cache_fuse";
                           }
                         });

}  // namespace
}  // namespace flashr
