// Partial-column reads from SSD-resident matrices (§3.2.1): selecting
// columns of an EM matrix must read ONLY those columns' bytes, and the data
// must be identical to the virtual select_cols path.
#include <gtest/gtest.h>

#include "common/config.h"
#include "core/dense_matrix.h"
#include "io/safs.h"
#include "matrix/em_store.h"

namespace flashr {
namespace {

class ColViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.io_part_rows = 128;
    o.small_nrow_threshold = 32;
    init(o);
  }
};

TEST_F(ColViewTest, SelectOnEmLeafProducesView) {
  dense_matrix X = conv_store(dense_matrix::rnorm(1024, 10, 0, 1, 1),
                              storage::ext_mem);
  dense_matrix sel = select_cols(X, {3, 7});
  // The selection is a leaf (no virtual node), backed by a column view.
  EXPECT_FALSE(sel.is_virtual());
  EXPECT_EQ(sel.resolved()->kind(), store_kind::ext);
  EXPECT_NE(dynamic_cast<const em_col_view*>(sel.resolved().get()), nullptr);
}

TEST_F(ColViewTest, ReadsOnlySelectedColumns) {
  const std::size_t n = 1024, p = 10;
  dense_matrix X = conv_store(dense_matrix::rnorm(n, p, 0, 1, 2),
                              storage::ext_mem);
  dense_matrix sel = select_cols(X, {0, 4, 9});
  io_stats::global().reset();
  sum(sel).scalar();
  // 3 of 10 columns -> 30% of the bytes.
  EXPECT_EQ(io_stats::global().read_bytes.load(), n * 3 * sizeof(double));
}

TEST_F(ColViewTest, DataMatchesVirtualSelectPath) {
  const std::size_t n = 700, p = 8;
  dense_matrix base = dense_matrix::rnorm(n, p, 1, 2, 3);
  dense_matrix X_em = conv_store(base, storage::ext_mem);
  dense_matrix X_im = conv_store(base, storage::in_mem);
  const std::vector<std::size_t> cols{5, 0, 6};
  smat view_data = select_cols(X_em, cols).to_smat();
  smat virt_data = select_cols(X_im, cols).to_smat();
  EXPECT_EQ(view_data.max_abs_diff(virt_data), 0.0);
}

TEST_F(ColViewTest, ViewOfViewComposes) {
  dense_matrix X = conv_store(dense_matrix::rnorm(600, 9, 0, 1, 4),
                              storage::ext_mem);
  smat h = X.to_smat();
  dense_matrix v1 = select_cols(X, {8, 2, 5, 1});
  dense_matrix v2 = select_cols(v1, {3, 0});  // -> base cols {1, 8}
  smat got = v2.to_smat();
  for (std::size_t i = 0; i < 600; ++i) {
    EXPECT_EQ(got(i, 0), h(i, 1));
    EXPECT_EQ(got(i, 1), h(i, 8));
  }
}

TEST_F(ColViewTest, ViewJoinsDagsLikeAnyLeaf) {
  dense_matrix X = conv_store(dense_matrix::rnorm(512, 6, 0, 1, 5),
                              storage::ext_mem);
  dense_matrix a = select_cols(X, {0, 1});
  dense_matrix b = select_cols(X, {2, 3});
  smat got = (a + b).to_smat();
  smat h = X.to_smat();
  for (std::size_t i = 0; i < 512; ++i) {
    EXPECT_NEAR(got(i, 0), h(i, 0) + h(i, 2), 1e-12);
    EXPECT_NEAR(got(i, 1), h(i, 1) + h(i, 3), 1e-12);
  }
}

TEST_F(ColViewTest, RaggedTailPartition) {
  dense_matrix X = conv_store(dense_matrix::seq(128 * 2 + 17), storage::ext_mem);
  dense_matrix wide = conv_store(cbind({X, X * 10.0, X * 100.0}),
                                 storage::ext_mem);
  dense_matrix mid = select_cols(wide, {1});
  smat got = mid.to_smat();
  const std::size_t n = 128 * 2 + 17;
  EXPECT_EQ(got(n - 1, 0), static_cast<double>(n - 1) * 10.0);
}

TEST_F(ColViewTest, OutOfRangeRejected) {
  dense_matrix X = conv_store(dense_matrix::rnorm(256, 4, 0, 1, 6),
                              storage::ext_mem);
  EXPECT_THROW(select_cols(X, {4}), shape_error);
}

}  // namespace
}  // namespace flashr
