// Spectral embedding tests: subspace iteration recovers known eigenstructure
// on small matrices and agrees between the in-memory and semi-external paths.
#include <gtest/gtest.h>

#include <cmath>

#include "common/config.h"
#include "common/error.h"
#include "common/rng.h"
#include "sparse/csr.h"
#include "sparse/sem_spmm.h"
#include "sparse/spectral.h"

namespace flashr::sparse {
namespace {

class SpectralTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    init(o);
  }
};

TEST_F(SpectralTest, OrthonormalizeProducesOrthonormalColumns) {
  smat v(50, 4);
  rng64 rng(1);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < 50; ++i) v(i, j) = rng.next_normal();
  orthonormalize(v);
  smat vtv = v.crossprod(v);
  EXPECT_LT(vtv.max_abs_diff(smat::identity(4)), 1e-10);
}

TEST_F(SpectralTest, RecoversDiagonalEigenvalues) {
  // Diagonal matrix: eigenvalues are the diagonal, eigenvectors are axes.
  std::vector<std::tuple<std::size_t, std::size_t, double>> trips;
  const std::size_t n = 40;
  // Geometric decay gives wide spectral gaps so subspace iteration
  // converges fast (rate = ratio of adjacent eigenvalues per iteration).
  for (std::size_t i = 0; i < n; ++i)
    trips.emplace_back(i, i, 100.0 * std::pow(0.5, static_cast<double>(i)));
  auto a = csr_matrix::from_triplets(n, n, std::move(trips));
  spectral_options o;
  o.k = 3;
  o.iterations = 80;
  spectral_result r = spectral_embed(a, o);
  EXPECT_NEAR(r.eigenvalues[0], 100.0, 1e-6);
  EXPECT_NEAR(r.eigenvalues[1], 50.0, 1e-6);
  EXPECT_NEAR(r.eigenvalues[2], 25.0, 1e-5);
  // Leading vector concentrates on coordinate 0.
  EXPECT_GT(std::abs(r.vectors(0, 0)), 0.999);
}

TEST_F(SpectralTest, StochasticMatrixHasUnitTopEigenvalue) {
  csr_matrix g = csr_matrix::random_graph(500, 8.0, 3);
  // Make it doubly usable: row-normalize (top eigenvalue 1 for the
  // transition operator).
  g.row_normalize();
  spectral_options o;
  o.k = 2;
  o.iterations = 150;
  spectral_result r = spectral_embed(g, o);
  EXPECT_NEAR(r.eigenvalues[0], 1.0, 0.05);
  EXPECT_LT(std::abs(r.eigenvalues[1]), 1.0);
}

TEST_F(SpectralTest, SemiExternalMatchesInMemory) {
  csr_matrix g = csr_matrix::random_graph(800, 6.0, 5);
  g.row_normalize();
  auto em = em_csr::create(g, 128);
  spectral_options o;
  o.k = 4;
  o.iterations = 25;
  o.seed = 9;
  spectral_result a = spectral_embed(g, o);
  spectral_result b = spectral_embed(*em, o);
  // Identical arithmetic order per row -> identical results.
  EXPECT_EQ(a.vectors.max_abs_diff(b.vectors), 0.0);
  for (std::size_t j = 0; j < 4; ++j)
    EXPECT_EQ(a.eigenvalues[j], b.eigenvalues[j]);
}

TEST_F(SpectralTest, EarlyStopOnTolerance) {
  std::vector<std::tuple<std::size_t, std::size_t, double>> trips;
  for (std::size_t i = 0; i < 30; ++i)
    trips.emplace_back(i, i, i == 0 ? 100.0 : 1.0);  // huge spectral gap
  auto a = csr_matrix::from_triplets(30, 30, std::move(trips));
  spectral_options o;
  o.k = 1;
  o.iterations = 100;
  o.tol = 1e-12;
  spectral_result r = spectral_embed(a, o);
  EXPECT_LT(r.iterations, 20);  // converges long before the cap
  EXPECT_NEAR(r.eigenvalues[0], 100.0, 1e-9);
}

TEST_F(SpectralTest, RejectsNonSquare) {
  auto a = csr_matrix::from_triplets(3, 4, {{0, 0, 1.0}});
  EXPECT_THROW(spectral_embed(a), shape_error);
}

}  // namespace
}  // namespace flashr::sparse
