// Algorithm-level mode differential: every benchmark algorithm must produce
// IDENTICAL models under eager, mem-fuse and cache-fuse execution (same
// seeds, same data) — the engine's execution strategy is an optimization
// axis, never a semantic one. This is the end-to-end counterpart of the
// per-op differential suite in test_engine.cpp.
#include <gtest/gtest.h>

#include "common/config.h"
#include "core/dense_matrix.h"
#include "matrix/datasets.h"
#include "ml/gmm.h"
#include "ml/kmeans.h"
#include "ml/lda.h"
#include "ml/linreg.h"
#include "ml/logistic.h"
#include "ml/naive_bayes.h"
#include "ml/pca.h"
#include "ml/stats.h"

namespace flashr::ml {
namespace {

class ModeDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.io_part_rows = 128;
    o.num_threads = 2;
    init(o);
  }

  template <typename Fn>
  auto under_mode(exec_mode m, Fn&& fn) {
    mutable_conf().mode = m;
    auto result = fn();
    mutable_conf().mode = exec_mode::cache_fuse;
    return result;
  }

  static constexpr std::size_t kN = 2000;
};

TEST_F(ModeDiffTest, CorrelationIdenticalAcrossModes) {
  labeled_data d = criteo_like(kN, 3);
  dense_matrix X = conv_store(d.X, storage::in_mem);
  smat ref = under_mode(exec_mode::cache_fuse, [&] { return correlation(X); });
  for (exec_mode m : {exec_mode::eager, exec_mode::mem_fuse}) {
    smat got = under_mode(m, [&] { return correlation(X); });
    EXPECT_LT(got.max_abs_diff(ref), 1e-12) << exec_mode_name(m);
  }
}

TEST_F(ModeDiffTest, PcaIdenticalAcrossModes) {
  labeled_data d = pagegraph_like(kN, 0, 5);
  dense_matrix X = conv_store(d.X, storage::in_mem);
  auto ref = under_mode(exec_mode::cache_fuse, [&] { return pca(X, 4); });
  for (exec_mode m : {exec_mode::eager, exec_mode::mem_fuse}) {
    auto got = under_mode(m, [&] { return pca(X, 4); });
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(got.eigenvalues[j], ref.eigenvalues[j], 1e-10)
          << exec_mode_name(m);
  }
}

TEST_F(ModeDiffTest, KmeansIdenticalAcrossModes) {
  labeled_data d = pagegraph_like(kN, 4, 7);
  dense_matrix X = conv_store(d.X, storage::in_mem);
  kmeans_options o;
  o.max_iters = 8;
  o.seed = 11;
  auto ref = under_mode(exec_mode::cache_fuse, [&] { return kmeans(X, 4, o); });
  for (exec_mode m : {exec_mode::eager, exec_mode::mem_fuse}) {
    auto got = under_mode(m, [&] { return kmeans(X, 4, o); });
    EXPECT_EQ(got.iterations, ref.iterations) << exec_mode_name(m);
    EXPECT_LT(got.centers.max_abs_diff(ref.centers), 1e-9)
        << exec_mode_name(m);
    EXPECT_EQ(got.moves_history, ref.moves_history) << exec_mode_name(m);
  }
}

TEST_F(ModeDiffTest, LogisticIdenticalAcrossModes) {
  labeled_data d = criteo_like(kN, 13);
  dense_matrix X = conv_store(d.X, storage::in_mem);
  dense_matrix y = conv_store(d.y, storage::in_mem);
  logistic_options o;
  o.max_iters = 6;
  o.loss_tol = 0;
  auto ref = under_mode(exec_mode::cache_fuse,
                        [&] { return logistic_regression(X, y, o); });
  for (exec_mode m : {exec_mode::eager, exec_mode::mem_fuse}) {
    auto got = under_mode(m, [&] { return logistic_regression(X, y, o); });
    EXPECT_LT(got.w.max_abs_diff(ref.w), 1e-8) << exec_mode_name(m);
  }
}

TEST_F(ModeDiffTest, GmmIdenticalAcrossModes) {
  labeled_data d = pagegraph_like(kN / 2, 2, 17);
  dense_matrix X = conv_store(d.X, storage::in_mem);
  gmm_options o;
  o.max_iters = 3;
  o.loglik_tol = 0;
  o.seed = 19;
  auto ref = under_mode(exec_mode::cache_fuse, [&] { return gmm_fit(X, 2, o); });
  for (exec_mode m : {exec_mode::eager, exec_mode::mem_fuse}) {
    auto got = under_mode(m, [&] { return gmm_fit(X, 2, o); });
    EXPECT_LT(got.means.max_abs_diff(ref.means), 1e-7) << exec_mode_name(m);
    for (std::size_t c = 0; c < 2; ++c)
      EXPECT_NEAR(got.weights[c], ref.weights[c], 1e-9) << exec_mode_name(m);
  }
}

TEST_F(ModeDiffTest, LdaAndRidgeIdenticalAcrossModes) {
  labeled_data d = criteo_like(kN, 23);
  dense_matrix X = conv_store(d.X, storage::in_mem);
  dense_matrix y = conv_store(d.y, storage::in_mem);
  auto lda_ref =
      under_mode(exec_mode::cache_fuse, [&] { return lda_train(X, y, 2); });
  auto lin_ref = under_mode(exec_mode::cache_fuse, [&] {
    return linear_regression(X, y.cast(scalar_type::f64));
  });
  for (exec_mode m : {exec_mode::eager, exec_mode::mem_fuse}) {
    auto lda_got = under_mode(m, [&] { return lda_train(X, y, 2); });
    EXPECT_LT(lda_got.pooled_cov.max_abs_diff(lda_ref.pooled_cov), 1e-9)
        << exec_mode_name(m);
    auto lin_got = under_mode(
        m, [&] { return linear_regression(X, y.cast(scalar_type::f64)); });
    EXPECT_LT(lin_got.w.max_abs_diff(lin_ref.w), 1e-9) << exec_mode_name(m);
    EXPECT_NEAR(lin_got.r2, lin_ref.r2, 1e-10) << exec_mode_name(m);
  }
}

}  // namespace
}  // namespace flashr::ml
