// Observability-layer tests (src/obs/): trace ring semantics (overflow
// drop-oldest, disabled-mode silence, concurrent flush), Chrome-JSON output
// validity and span nesting under all three exec modes, histogram
// percentile math, registry probes vs the legacy pass_stats/io_stats
// counters they mirror, explain() goldens, structured logging, and the
// now-safe concurrent last_pass_stats() reader.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/log.h"
#include "core/dense_matrix.h"
#include "core/exec.h"
#include "io/safs.h"
#include "matrix/block_matrix.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sparse/sem_spmm.h"

namespace flashr {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON validity checker (objects, arrays, strings, numbers,
// true/false/null). Not a parser — just enough to prove the emitters
// produce well-formed JSON without a third-party library.
// ---------------------------------------------------------------------------

struct json_checker {
  const char* p;
  const char* end;

  void ws() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }
  bool lit(const char* s) {
    const std::size_t n = std::strlen(s);
    if (static_cast<std::size_t>(end - p) < n || std::strncmp(p, s, n) != 0)
      return false;
    p += n;
    return true;
  }
  bool string() {
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return false;
      }
      ++p;
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }
  bool number() {
    const char* start = p;
    if (p < end && (*p == '-' || *p == '+')) ++p;
    bool digits = false;
    while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                       *p == '.' || *p == 'e' || *p == 'E' || *p == '-' ||
                       *p == '+')) {
      if (std::isdigit(static_cast<unsigned char>(*p))) digits = true;
      ++p;
    }
    return digits && p != start;
  }
  bool value() {
    ws();
    if (p >= end) return false;
    switch (*p) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return lit("true");
      case 'f': return lit("false");
      case 'n': return lit("null");
      default: return number();
    }
  }
  bool object() {
    if (*p != '{') return false;
    ++p;
    ws();
    if (p < end && *p == '}') { ++p; return true; }
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (p >= end || *p != ':') return false;
      ++p;
      if (!value()) return false;
      ws();
      if (p < end && *p == ',') { ++p; continue; }
      break;
    }
    if (p >= end || *p != '}') return false;
    ++p;
    return true;
  }
  bool array() {
    if (*p != '[') return false;
    ++p;
    ws();
    if (p < end && *p == ']') { ++p; return true; }
    for (;;) {
      if (!value()) return false;
      ws();
      if (p < end && *p == ',') { ++p; continue; }
      break;
    }
    if (p >= end || *p != ']') return false;
    ++p;
    return true;
  }
};

bool valid_json(const std::string& s) {
  json_checker c{s.data(), s.data() + s.size()};
  if (!c.value()) return false;
  c.ws();
  return c.p == c.end;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

options obs_options() {
  options o;
  o.em_dir = "/tmp/flashr_test_obs";
  o.num_threads = 4;
  o.io_part_rows = 1024;
  o.pcache_bytes = 4096;
  o.small_nrow_threshold = 16;
  o.obs_trace = true;
  o.obs_metrics = true;
  return o;
}

/// Per-tid span balance over the flushed trace: every "E" must close an
/// open "B" on the same track, and every track must end with depth zero.
void check_spans_balanced(const std::string& json) {
  std::unordered_map<int, int> depth;
  std::size_t pos = 0;
  while ((pos = json.find("\"ph\":\"", pos)) != std::string::npos) {
    const char ph = json[pos + 6];
    const std::size_t tid_pos = json.find("\"tid\":", pos);
    ASSERT_NE(tid_pos, std::string::npos);
    const int tid = std::atoi(json.c_str() + tid_pos + 6);
    if (ph == 'B') {
      ++depth[tid];
    } else if (ph == 'E') {
      ASSERT_GT(depth[tid], 0) << "E with no open B on tid " << tid;
      --depth[tid];
    }
    ++pos;
  }
  for (const auto& [tid, d] : depth)
    EXPECT_EQ(d, 0) << "unclosed span on tid " << tid;
}

std::size_t count_events(const std::string& json, const std::string& name,
                         char ph) {
  std::string needle =
      "{\"name\":\"" + name + "\",\"cat\":\"flashr\",\"ph\":\"";
  needle += ph;
  needle += '"';
  std::size_t n = 0, pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    ++n;
    ++pos;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TEST(ObsTrace, SpansNestUnderAllExecModes) {
  for (exec_mode m :
       {exec_mode::eager, exec_mode::mem_fuse, exec_mode::cache_fuse}) {
    options o = obs_options();
    o.mode = m;
    init(o);
    obs::trace_clear();

    dense_matrix X = conv_store(dense_matrix::runif(6000, 3, 0, 1, 7),
                                storage::ext_mem);
    const double s = sum(sqrt((X * 2.0 + 1.0))).scalar();
    EXPECT_GT(s, 0.0);

    obs::trace_summary tsum;
    const std::string json = obs::trace_json(&tsum);
    EXPECT_TRUE(valid_json(json)) << "mode " << exec_mode_name(m);
    EXPECT_GT(tsum.events, 0u);
    check_spans_balanced(json);
    EXPECT_GE(count_events(json, "materialize", 'B'), 1u);
    EXPECT_GE(count_events(json, "pass", 'B'), 1u);
    EXPECT_GE(count_events(json, "partition", 'B'), 1u);
    EXPECT_GE(count_events(json, "io.read", 'B'), 1u);
  }
}

TEST(ObsTrace, RingOverflowDropsOldestAndCounts) {
  options o = obs_options();
  o.obs_ring_events = 64;
  init(o);
  obs::trace_clear();

  for (int i = 0; i < 1000; ++i) OBS_INSTANT("overflow.tick", i);

  EXPECT_EQ(obs::trace_dropped(), 936u);
  obs::trace_summary tsum;
  const std::string json = obs::trace_json(&tsum);
  EXPECT_TRUE(valid_json(json));
  EXPECT_EQ(tsum.events, 64u);    // newest 64 kept
  EXPECT_EQ(tsum.dropped, 936u);  // oldest 936 overwritten
  // The survivors are the newest records: args 936..999.
  EXPECT_EQ(json.find("\"args\":{\"v\":935}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"v\":936}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"v\":999}"), std::string::npos);
}

TEST(ObsTrace, DisabledModeEmitsNothing) {
  options o = obs_options();
  o.obs_trace = false;
  o.obs_metrics = false;
  init(o);
  obs::trace_clear();

  dense_matrix X = conv_store(dense_matrix::runif(4000, 3, 0, 1, 11),
                              storage::ext_mem);
  (void)sum(X * 3.0).scalar();

  obs::trace_summary tsum;
  const std::string json = obs::trace_json(&tsum);
  EXPECT_TRUE(valid_json(json));
  EXPECT_EQ(tsum.events, 0u);
  EXPECT_EQ(tsum.threads, 0u);  // no thread ever registered a ring
  EXPECT_EQ(obs::trace_dropped(), 0u);
}

TEST(ObsTrace, ConcurrentWritersAndFlushAreClean) {
  options o = obs_options();
  o.obs_ring_events = 256;  // small, so writers wrap while the flusher runs
  init(o);
  obs::trace_clear();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        OBS_SPAN("worker.op");
        OBS_INSTANT("worker.tick", 1);
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    obs::trace_summary tsum;
    const std::string json = obs::trace_json(&tsum);
    EXPECT_TRUE(valid_json(json));
    check_spans_balanced(json);
  }
  stop.store(true);
  for (auto& w : writers) w.join();
}

TEST(ObsTrace, WriteTraceProducesLoadableFile) {
  options o = obs_options();
  init(o);
  obs::trace_clear();
  {
    OBS_SPAN_ARG("file.span", 42);
    OBS_INSTANT("file.tick", 7);
  }
  const std::string path = "/tmp/flashr_test_obs_trace.json";
  const obs::trace_summary tsum = obs::write_trace(path);
  EXPECT_EQ(tsum.events, 3u);  // B + i + E
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  EXPECT_TRUE(valid_json(content));
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(ObsMetrics, HistogramPercentilesOnKnownDistributions) {
  obs::histogram h;
  // Uniform 1..1000, each exactly once.
  std::uint64_t total = 0;
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    h.record(v);
    total += v;
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), total);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(total) / 1000.0);
  // Power-of-two buckets bound the error: every percentile interpolates
  // inside its true value's bucket [2^(i-1), 2^i - 1].
  const double p50 = h.percentile(50);  // true value 500, bucket [256, 511]
  const double p95 = h.percentile(95);  // true value 950, bucket [512, 1023]
  const double p99 = h.percentile(99);  // true value 990, bucket [512, 1023]
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 511.0);
  EXPECT_GE(p95, 512.0);
  EXPECT_LE(p95, 1023.0);
  EXPECT_GE(p99, p95);  // same bucket, higher rank: monotone
  EXPECT_LE(p99, 1023.0);

  // Single-value distribution: everything lands in bucket of 100 = [64,127].
  obs::histogram one;
  for (int i = 0; i < 100; ++i) one.record(100);
  EXPECT_EQ(one.count(), 100u);
  EXPECT_DOUBLE_EQ(one.mean(), 100.0);
  EXPECT_GE(one.percentile(50), 64.0);
  EXPECT_LE(one.percentile(50), 127.0);
  EXPECT_GE(one.percentile(99), 64.0);
  EXPECT_LE(one.percentile(99), 127.0);

  // Empty histogram.
  obs::histogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.percentile(50), 0.0);

  // Zero values land in bucket 0, which pins percentiles to 0.
  obs::histogram zeros;
  zeros.record(0);
  zeros.record(0);
  EXPECT_DOUBLE_EQ(zeros.percentile(50), 0.0);
}

TEST(ObsMetrics, CountersGaugesAndRegistryJson) {
  auto& reg = obs::metrics_registry::global();
  reg.get_counter("test.counter").add(41);
  reg.get_counter("test.counter").add(1);
  reg.get_gauge("test.gauge").set(7);
  reg.get_histogram("test.hist").record(10);

  bool found = false;
  EXPECT_EQ(reg.value("test.counter", &found), 42u);
  EXPECT_TRUE(found);
  EXPECT_EQ(reg.value("test.gauge", &found), 7u);
  EXPECT_TRUE(found);
  EXPECT_EQ(reg.value("test.absent", &found), 0u);
  EXPECT_FALSE(found);

  const std::string json = reg.to_json();
  EXPECT_TRUE(valid_json(json));
  EXPECT_NE(json.find("\"test.counter\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"test.gauge\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"test.hist\""), std::string::npos);

  reg.reset();
  EXPECT_EQ(reg.value("test.counter"), 0u);
}

TEST(ObsMetrics, ProbesMatchLegacyPassAndIoStats) {
  options o = obs_options();
  init(o);

  dense_matrix X = conv_store(dense_matrix::runif(8000, 4, 0, 1, 13),
                              storage::ext_mem);
  (void)sum(X * 2.0).scalar();

  auto& reg = obs::metrics_registry::global();
  const exec::pass_stats s = exec::last_pass_stats();
  EXPECT_GT(s.passes, 0u);
  EXPECT_GT(s.read_bytes, 0u);
  // The registry's pass.* probes ARE last_pass_stats — no second
  // accumulator that could drift.
  EXPECT_EQ(reg.value("pass.passes"), s.passes);
  EXPECT_EQ(reg.value("pass.read_bytes"), s.read_bytes);
  EXPECT_EQ(reg.value("pass.write_bytes"), s.write_bytes);
  EXPECT_EQ(reg.value("pass.reads_issued"), s.reads_issued);
  EXPECT_EQ(reg.value("pass.occupancy_x100"), s.occupancy_x100);

  auto& ios = io_stats::global();
  EXPECT_EQ(reg.value("io.read_ops"), ios.read_ops.load());
  EXPECT_EQ(reg.value("io.read_bytes"), ios.read_bytes.load());
  EXPECT_EQ(reg.value("io.write_bytes"), ios.write_bytes.load());

  // pass_stats::to_json round-trips as JSON and carries the same numbers.
  const std::string pj = s.to_json();
  EXPECT_TRUE(valid_json(pj));
  EXPECT_NE(pj.find("\"read_bytes\": " + std::to_string(s.read_bytes)),
            std::string::npos);

  // Extended obs histograms recorded (obs_metrics was on).
  EXPECT_GT(reg.get_histogram("io.read_us").count(), 0u);
  EXPECT_GT(reg.get_histogram("pass.partition_service_us").count(), 0u);
}

TEST(ObsMetrics, ConcurrentLastPassStatsReaderIsSafe) {
  options o = obs_options();
  init(o);

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread reader([&stop, &torn] {
    while (!stop.load(std::memory_order_relaxed)) {
      const exec::pass_stats s = exec::last_pass_stats();
      // Coherent snapshot: this workload's EM reads always go through the
      // async layer, so read bytes without issued reads would mean a torn
      // mix of old and new fields.
      if (s.read_bytes > 0 && s.reads_issued == 0)
        torn.fetch_add(1, std::memory_order_relaxed);
      (void)obs::metrics_registry::global().to_json();
    }
  });
  for (int i = 0; i < 5; ++i) {
    dense_matrix X = conv_store(
        dense_matrix::runif(6000, 3, 0, 1, 17 + i), storage::ext_mem);
    (void)sum(X * 1.5).scalar();
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(torn.load(), 0);
}

// ---------------------------------------------------------------------------
// Explain
// ---------------------------------------------------------------------------

TEST(ObsExplain, GoldenDag) {
  options o = obs_options();
  o.mode = exec_mode::cache_fuse;
  init(o);

  dense_matrix X = dense_matrix::runif(4096, 4, 0, 1, 5);
  dense_matrix d = sum(X * 2.0);

  const std::string got = d.explain();
  EXPECT_TRUE(valid_json(got));
  // pcache_rows(ncol=4, part_rows=1024, elem=8) with pcache_bytes=4096
  // gives bit_floor(4096 / 32) = 128 chunk rows.
  const std::string want = R"({
  "targets": [2],
  "exec": {"mode": "cache-fuse", "chunk_rows": 128, "sequential_dispatch": false, "groups": [[1, 2]]},
  "nodes": [
    {"id": 0, "store": "generated", "nrow": 4096, "ncol": 4, "type": "f64", "part_rows": 1024, "children": []},
    {"id": 1, "store": "virtual", "op": "mapply.scalar", "fn": "*", "nrow": 4096, "ncol": 4, "type": "f64", "part_rows": 1024, "children": [0]},
    {"id": 2, "store": "virtual", "op": "agg", "fn": "sum", "sink": true, "nrow": 1, "ncol": 1, "type": "f64", "part_rows": 1024, "children": [1]}
  ]
})";
  EXPECT_EQ(got, want);

  // Deterministic: same DAG, same output.
  EXPECT_EQ(d.explain(), got);

  // dot output names every node and edge.
  const std::string dot = d.explain_dot();
  EXPECT_NE(dot.find("digraph flashr_dag"), std::string::npos);
  EXPECT_NE(dot.find("mapply.scalar"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);

  // Eager mode plans one fusion group per pending node.
  mutable_conf().mode = exec_mode::eager;
  const std::string eager = d.explain();
  EXPECT_TRUE(valid_json(eager));
  EXPECT_NE(eager.find("\"groups\": [[1], [2]]"), std::string::npos);
  mutable_conf().mode = exec_mode::cache_fuse;

  // After materialization the DAG collapses to a physical leaf.
  const double v = d.scalar();
  EXPECT_GT(v, 0.0);
  const std::string after = d.explain();
  EXPECT_TRUE(valid_json(after));
  EXPECT_EQ(after.find("\"store\": \"virtual\""), std::string::npos);
}

// A block matrix's per-block virtual nodes share the wide generated leaf,
// so the explained plan is one DAG: leaf + a select/mapply pair per block,
// all in a single cache-fuse group.
TEST(ObsExplain, GoldenBlockMatrixDag) {
  options o = obs_options();
  o.mode = exec_mode::cache_fuse;
  init(o);

  dense_matrix wide = dense_matrix::runif(4096, 48, 0, 1, 9);
  block_matrix bm(wide);  // two blocks: 32 + 16 columns
  ASSERT_EQ(bm.num_blocks(), 2u);
  block_matrix scaled = bm * 2.0;

  const std::string got = scaled.explain();
  EXPECT_TRUE(valid_json(got));
  const std::string want = R"({
  "targets": [2, 4],
  "exec": {"mode": "cache-fuse", "chunk_rows": 16, "sequential_dispatch": false, "groups": [[1, 2, 3, 4]]},
  "nodes": [
    {"id": 0, "store": "generated", "nrow": 4096, "ncol": 48, "type": "f64", "part_rows": 1024, "children": []},
    {"id": 1, "store": "virtual", "op": "[,cols]", "ncols": 32, "nrow": 4096, "ncol": 32, "type": "f64", "part_rows": 1024, "children": [0]},
    {"id": 2, "store": "virtual", "op": "mapply.scalar", "fn": "*", "nrow": 4096, "ncol": 32, "type": "f64", "part_rows": 1024, "children": [1]},
    {"id": 3, "store": "virtual", "op": "[,cols]", "ncols": 16, "nrow": 4096, "ncol": 16, "type": "f64", "part_rows": 1024, "children": [0]},
    {"id": 4, "store": "virtual", "op": "mapply.scalar", "fn": "*", "nrow": 4096, "ncol": 16, "type": "f64", "part_rows": 1024, "children": [3]}
  ]
})";
  EXPECT_EQ(got, want);
  EXPECT_EQ(scaled.explain(), got) << "deterministic";

  const std::string dot = scaled.explain_dot();
  EXPECT_NE(dot.find("digraph flashr_dag"), std::string::npos);
  EXPECT_NE(dot.find("[,cols]"), std::string::npos);
  EXPECT_NE(dot.find("mapply.scalar"), std::string::npos);
}

// A dense DAG fed by a semi-external sparse product: em_csr::spmm streams
// the sparse matrix from SSDs into a host smat, which enters the dense DAG
// as the small side of an inner.prod.
TEST(ObsExplain, GoldenSparseInputDag) {
  options o = obs_options();
  o.mode = exec_mode::cache_fuse;
  init(o);

  sparse::csr_matrix A = sparse::csr_matrix::random_graph(64, 4.0, 13);
  auto em = sparse::em_csr::create(A, /*rows_per_block=*/16);
  smat D(64, 2);
  for (std::size_t i = 0; i < 64; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      D(i, j) = static_cast<double>(i + j) / 64.0;
  const smat P = em->spmm(D);  // sparse-input operand, 64 x 2

  dense_matrix X = dense_matrix::runif(4096, 64, 0, 1, 17);
  dense_matrix d = sum(inner_prod(X, P, bop_id::mul, agg_id::sum));

  const std::string got = d.explain();
  EXPECT_TRUE(valid_json(got));
  const std::string want = R"({
  "targets": [2],
  "exec": {"mode": "cache-fuse", "chunk_rows": 16, "sequential_dispatch": false, "groups": [[1, 2]]},
  "nodes": [
    {"id": 0, "store": "generated", "nrow": 4096, "ncol": 64, "type": "f64", "part_rows": 1024, "children": []},
    {"id": 1, "store": "virtual", "op": "inner.prod", "f1": "*", "f2": "sum", "nrow": 4096, "ncol": 2, "type": "f64", "part_rows": 1024, "children": [0]},
    {"id": 2, "store": "virtual", "op": "agg", "fn": "sum", "sink": true, "nrow": 1, "ncol": 1, "type": "f64", "part_rows": 1024, "children": [1]}
  ]
})";
  EXPECT_EQ(got, want);

  const std::string dot = d.explain_dot();
  EXPECT_NE(dot.find("inner.prod"), std::string::npos);

  // The DAG computes what the in-memory reference computes.
  const smat Pref = A.spmm(D);
  double want_sum = 0;
  smat Xs = X.to_smat();
  for (std::size_t i = 0; i < Xs.nrow(); ++i)
    for (std::size_t j = 0; j < Pref.ncol(); ++j) {
      double acc = 0;
      for (std::size_t k = 0; k < Xs.ncol(); ++k)
        acc += Xs(i, k) * Pref(k, j);
      want_sum += acc;
    }
  EXPECT_NEAR(d.scalar(), want_sum, std::abs(want_sum) * 1e-10);
}

// ---------------------------------------------------------------------------
// Structured logging
// ---------------------------------------------------------------------------

TEST(ObsLog, SinkReceivesFormattedRecords) {
  std::vector<std::pair<log_level, std::string>> got;
  set_log_level(log_level::info);
  set_log_sink([&got](log_level lvl, const char* msg) {
    got.emplace_back(lvl, msg);
  });
  FLASHR_INFO("x=%d y=%s", 42, "ok");
  FLASHR_WARN("warned");
  FLASHR_DEBUG("dropped: level is info");  // filtered before the sink
  set_log_sink(nullptr);
  set_log_level(log_level::warn);

  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first, log_level::info);
  EXPECT_EQ(got[0].second, "x=42 y=ok");
  EXPECT_EQ(got[1].first, log_level::warn);
  EXPECT_EQ(got[1].second, "warned");
}

TEST(ObsLog, JsonFormatEmitsOneValidObjectPerLine) {
  set_log_level(log_level::warn);
  set_log_format(log_format::json);
  ::testing::internal::CaptureStderr();
  FLASHR_WARN("quote \" backslash \\ newline \n done");
  const std::string err = ::testing::internal::GetCapturedStderr();
  set_log_format(log_format::text);

  ASSERT_FALSE(err.empty());
  ASSERT_EQ(err.back(), '\n');
  const std::string line = err.substr(0, err.size() - 1);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "one record per line";
  EXPECT_TRUE(valid_json(line)) << line;
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(line.find("\"ts_ns\":"), std::string::npos);
  EXPECT_NE(line.find("\\\""), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);
}

}  // namespace
}  // namespace flashr
