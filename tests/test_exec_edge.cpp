// Executor edge cases: degenerate shapes, deep DAGs, wide matrices, repeated
// materialization, mixed-geometry errors, and many-sink fan-out.
#include <gtest/gtest.h>

#include <cmath>

#include "common/config.h"
#include "core/dense_matrix.h"
#include "core/exec.h"
#include "io/safs.h"

namespace flashr {
namespace {

class ExecEdgeTest : public ::testing::TestWithParam<exec_mode> {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.io_part_rows = 64;
    o.pcache_bytes = 1024;
    o.small_nrow_threshold = 16;
    o.mode = GetParam();
    init(o);
  }
};

TEST_P(ExecEdgeTest, MaterializeOfLeafIsNoop) {
  dense_matrix m = dense_matrix::rnorm(200, 2, 0, 1, 1);
  dense_matrix placed = conv_store(m, storage::in_mem);
  io_stats::global().reset();
  placed.materialize();  // already physical
  EXPECT_EQ(io_stats::global().read_ops.load(), 0u);
}

TEST_P(ExecEdgeTest, EmptyTargetListIsNoop) {
  EXPECT_NO_THROW(materialize_all({}));
  EXPECT_NO_THROW(materialize_all({dense_matrix{}}));
}

TEST_P(ExecEdgeTest, RepeatedMaterializationIsStable) {
  dense_matrix x = dense_matrix::rnorm(300, 2, 0, 1, 2) * 2.0;
  const double s1 = sum(x).scalar();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(sum(x).scalar(), s1);
}

TEST_P(ExecEdgeTest, DeepChainOfHundredOps) {
  dense_matrix x = dense_matrix::constant(500, 2, 1.0);
  dense_matrix y = x;
  for (int i = 0; i < 100; ++i) y = y + 1.0;
  EXPECT_EQ(sum(y).scalar(), 500 * 2 * 101.0);
}

TEST_P(ExecEdgeTest, WideMatrixForcesMinimumChunkRows) {
  // 600 columns with tiny pcache: chunk rows clamp at the floor of 16.
  dense_matrix x = dense_matrix::rnorm(128, 600, 0, 1, 3);
  const double s = sum(square(x)).scalar();
  EXPECT_NEAR(s, 128.0 * 600.0, 128 * 600 * 0.2);  // E[x^2]=1
}

TEST_P(ExecEdgeTest, MatrixSmallerThanOnePartition) {
  dense_matrix x = conv_store(dense_matrix::rnorm(20, 3, 5, 1, 4),
                              storage::ext_mem);
  EXPECT_EQ(x.resolved()->num_parts(), 1u);
  EXPECT_NEAR(col_means(x).to_smat()(0, 0), 5.0, 1.0);
}

TEST_P(ExecEdgeTest, MismatchedPartitionDimsRejected) {
  dense_matrix a = dense_matrix::rnorm(100, 2, 0, 1, 5);
  dense_matrix b = dense_matrix::rnorm(200, 2, 0, 1, 6);
  EXPECT_THROW(a + b, shape_error);
}

TEST_P(ExecEdgeTest, ManySinksOnePass) {
  dense_matrix x = conv_store(dense_matrix::rnorm(64 * 6, 4, 0, 1, 7),
                              storage::ext_mem);
  std::vector<dense_matrix> sinks;
  for (int i = 0; i < 12; ++i)
    sinks.push_back(sum(x * static_cast<double>(i + 1)));
  io_stats::global().reset();
  materialize_all(sinks);
  if (GetParam() != exec_mode::eager) {
    EXPECT_EQ(io_stats::global().read_ops.load(), 6u);
  }
  const double base = sinks[0].scalar();
  for (int i = 0; i < 12; ++i)
    EXPECT_NEAR(sinks[static_cast<std::size_t>(i)].scalar(),
                base * (i + 1), std::abs(base) * (i + 1) * 1e-12);
}

TEST_P(ExecEdgeTest, NestedSelectAndCbind) {
  dense_matrix x = dense_matrix::rnorm(200, 6, 0, 1, 8);
  smat h = x.to_smat();
  dense_matrix sel1 = select_cols(x, {5, 3, 1});
  dense_matrix sel2 = select_cols(sel1, {2, 0});  // -> cols {1, 5} of x
  smat got = sel2.to_smat();
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(got(i, 0), h(i, 1));
    EXPECT_EQ(got(i, 1), h(i, 5));
  }
  std::vector<dense_matrix> many(10, sel2);
  dense_matrix wide = cbind(many);
  EXPECT_EQ(wide.ncol(), 20u);
  EXPECT_NEAR(sum(wide).scalar(), 10 * sum(sel2).scalar(), 1e-8);
}

TEST_P(ExecEdgeTest, GeneratedDirectToSsd) {
  dense_matrix g = dense_matrix::runif(64 * 4, 2, 0, 1, 9);
  dense_matrix em = conv_store(g, storage::ext_mem);
  EXPECT_EQ(em.resolved()->kind(), store_kind::ext);
  EXPECT_EQ(em.to_smat().max_abs_diff(g.to_smat()), 0.0);
}

TEST_P(ExecEdgeTest, SinkOverSmallMatrix) {
  // Aggregating a small (single-partition, eager) matrix still works.
  dense_matrix s = dense_matrix::from_smat(smat::from_rows(2, 2, {1, 2, 3, 4}));
  EXPECT_EQ(sum(s).scalar(), 10.0);
  EXPECT_EQ(crossprod(s).to_smat()(0, 0), 10.0);  // 1*1 + 3*3
}

TEST_P(ExecEdgeTest, ChainAcrossMaterializationBoundary) {
  // Materialize mid-chain, keep composing: results must agree with the
  // fully lazy pipeline.
  dense_matrix x = dense_matrix::rnorm(400, 3, 0, 1, 10);
  dense_matrix lazy_total = sum(sqrt(abs(x * 2.0)) + 1.0);
  dense_matrix mid = x * 2.0;
  mid.materialize();
  dense_matrix staged_total = sum(sqrt(abs(mid)) + 1.0);
  EXPECT_NEAR(lazy_total.scalar(), staged_total.scalar(), 1e-9);
}

TEST_P(ExecEdgeTest, SingleColumnEverything) {
  dense_matrix v = conv_store(dense_matrix::seq(64 * 3 + 7), storage::in_mem);
  const double n = static_cast<double>(v.nrow());
  EXPECT_EQ(sum(v).scalar(), n * (n - 1) / 2);
  EXPECT_EQ(flashr::max(v).scalar(), n - 1);
  EXPECT_EQ(which_max_row(v).to_smat()(0, 0), 0.0);  // single column
  smat cs = cumsum_col(v).to_smat();
  EXPECT_EQ(cs(static_cast<std::size_t>(n) - 1, 0), n * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ExecEdgeTest,
    ::testing::Values(exec_mode::eager, exec_mode::mem_fuse,
                      exec_mode::cache_fuse),
    [](const ::testing::TestParamInfo<exec_mode>& i) {
      std::string s = exec_mode_name(i.param);
      for (auto& c : s)
        if (c == '-') c = '_';
      return s;
    });

class FailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    init(o);
  }
};

TEST_F(FailureTest, SafsCreateInMissingDirectoryThrows) {
  options bad;
  bad.em_dir = "/tmp/flashr_definitely_missing_dir/sub";
  // init mkdirs only one level; a nested missing path fails at file create.
  init(bad);
  EXPECT_THROW(safs_file::create("nope", 4096), io_error);
  options good;
  good.em_dir = "/tmp/flashr_test_em";
  init(good);
}

TEST_F(FailureTest, OutOfRangeAccessAborts) {
  // Access within the stripe-unit padding zero-fills; access beyond the
  // padded extent is a hard invariant violation.
  auto f = safs_file::create("small", 4096);
  std::vector<char> buf(8192);
  EXPECT_DEATH(f->read(conf().stripe_unit * 4, 8192, buf.data()),
               "out of range");
}

TEST_F(FailureTest, GatherRowsOutOfRange) {
  dense_matrix m = dense_matrix::rnorm(100, 2, 0, 1, 1);
  EXPECT_THROW(gather_rows(m, {1000}), shape_error);
}

}  // namespace
}  // namespace flashr
