// Resilience tests: seeded fault injection, retry/backoff, partition
// checksums, and clean pass cancellation.
//
// The fault injector (io/fault.h) evaluates a deterministic schedule, so
// every test here pins a seed and (usually) a finite fault budget; budgets
// make retry counts exact and keep multi-threaded outcomes reproducible.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/error.h"
#include "core/dense_matrix.h"
#include "io/async_io.h"
#include "io/fault.h"
#include "io/safs.h"
#include "matrix/em_store.h"
#include "mem/buffer_pool.h"

namespace flashr {
namespace {

std::vector<char> pattern(std::size_t n, unsigned seed) {
  std::vector<char> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<char>((i * 131 + seed) & 0xff);
  return v;
}

/// Overwrite every byte of a backing file with 0xFF (on-disk corruption).
void clobber_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr) << path;
  std::fseek(f, 0, SEEK_END);
  const long n = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<char> junk(static_cast<std::size_t>(n), '\xFF');
  if (!junk.empty()) {
    ASSERT_EQ(std::fwrite(junk.data(), 1, junk.size(), f), junk.size());
  }
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// SAFS layer: retry/backoff and the injection schedule itself
// ---------------------------------------------------------------------------

class SafsFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.stripes = 3;
    o.stripe_unit = 4096;
    init(o);
    fault_injector::global().clear();
    io_stats::global().reset();
  }
  void TearDown() override { fault_injector::global().clear(); }
};

TEST_F(SafsFaultTest, TransientReadFaultsAbsorbedExactly) {
  const std::size_t n = 8 * 1024;
  auto f = safs_file::create("flt_r", n);
  auto data = pattern(n, 3);
  f->write(0, n, data.data());

  fault_plan p;
  p.seed = 42;
  p.pread_prob = 1.0;  // every attempt faults until the budget is spent
  p.max_faults = 3;    // < conf().io_max_retries, so the read must succeed
  ASSERT_LT(p.max_faults, static_cast<std::size_t>(conf().io_max_retries) + 1);
  std::vector<char> back(n);
  {
    fault_scope scope(p);
    f->read(0, n, back.data());
  }
  EXPECT_EQ(std::memcmp(data.data(), back.data(), n), 0);
  EXPECT_EQ(io_stats::global().retries.load(), 3u);
  EXPECT_EQ(io_stats::global().injected_faults.load(), 3u);
}

TEST_F(SafsFaultTest, TransientWriteFaultsAbsorbedExactly) {
  const std::size_t n = 8 * 1024;
  auto f = safs_file::create("flt_w", n);
  auto data = pattern(n, 4);

  fault_plan p;
  p.seed = 43;
  p.pwrite_prob = 1.0;
  p.max_faults = 2;
  {
    fault_scope scope(p);
    f->write(0, n, data.data());
  }
  std::vector<char> back(n);
  f->read(0, n, back.data());
  EXPECT_EQ(std::memcmp(data.data(), back.data(), n), 0);
  EXPECT_EQ(io_stats::global().retries.load(), 2u);
  EXPECT_EQ(io_stats::global().injected_faults.load(), 2u);
}

TEST_F(SafsFaultTest, PersistentReadFaultEscalatesToTypedError) {
  const std::size_t n = 4096;
  auto f = safs_file::create("flt_esc", n);
  auto data = pattern(n, 5);
  f->write(0, n, data.data());

  fault_plan p;
  p.seed = 44;
  p.pread_prob = 1.0;  // unlimited budget: the retry ladder must give up
  std::vector<char> back(n);
  fault_scope scope(p);
  try {
    f->read(0, n, back.data());
    FAIL() << "expected io_error";
  } catch (const io_error& e) {
    EXPECT_EQ(e.err(), EIO);
    EXPECT_FALSE(e.path().empty());
    EXPECT_EQ(e.len(), n);
    EXPECT_NE(std::string(e.what()).find("pread"), std::string::npos);
  }
  // Initial attempt + io_max_retries retries, all injected.
  EXPECT_EQ(io_stats::global().retries.load(),
            static_cast<std::size_t>(conf().io_max_retries));
}

TEST_F(SafsFaultTest, EintrRetriedBeyondTransientBudget) {
  const std::size_t n = 4096;
  auto f = safs_file::create("flt_eintr", n);
  auto data = pattern(n, 6);
  f->write(0, n, data.data());

  fault_plan p;
  p.seed = 45;
  p.pread_prob = 1.0;
  p.fault_errno = EINTR;
  p.max_faults = 10;  // far past io_max_retries: EINTR is always retried
  ASSERT_GT(p.max_faults, static_cast<std::size_t>(conf().io_max_retries));
  std::vector<char> back(n);
  {
    fault_scope scope(p);
    f->read(0, n, back.data());
  }
  EXPECT_EQ(std::memcmp(data.data(), back.data(), n), 0);
  EXPECT_EQ(io_stats::global().retries.load(), 10u);
}

TEST_F(SafsFaultTest, ShortWriteIsCompletedByTheWriteLoop) {
  const std::size_t n = 4096;
  auto f = safs_file::create("flt_sw", n);
  auto data = pattern(n, 7);

  fault_plan p;
  p.seed = 46;
  p.short_prob = 1.0;  // first pwrite transfers only half its bytes
  p.max_faults = 1;
  {
    fault_scope scope(p);
    f->write(0, n, data.data());
  }
  std::vector<char> back(n);
  f->read(0, n, back.data());
  EXPECT_EQ(std::memcmp(data.data(), back.data(), n), 0);
  EXPECT_EQ(io_stats::global().injected_faults.load(), 1u);
}

TEST_F(SafsFaultTest, ShortReadSilentlyZeroFills) {
  // The hazard partition checksums exist for: a premature EOF is
  // indistinguishable from reading a hole, so the safs layer zero-fills
  // and reports success.
  const std::size_t n = 4096;
  auto f = safs_file::create("flt_sr", n);
  auto data = pattern(n, 8);
  f->write(0, n, data.data());

  fault_plan p;
  p.seed = 47;
  p.short_prob = 1.0;
  p.max_faults = 1;
  std::vector<char> back(n, 'x');
  {
    fault_scope scope(p);
    f->read(0, n, back.data());
  }
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(back[i], 0) << i;
  EXPECT_EQ(io_stats::global().injected_faults.load(), 1u);
}

TEST_F(SafsFaultTest, LatencyInjectionLeavesDataIntact) {
  const std::size_t n = 4096;
  auto f = safs_file::create("flt_lat", n);
  auto data = pattern(n, 9);
  f->write(0, n, data.data());

  fault_plan p;
  p.seed = 48;
  p.latency_prob = 1.0;  // one injection per syscall: two reads, two delays
  p.latency_us = 500;
  p.max_faults = 2;
  std::vector<char> back(n);
  {
    fault_scope scope(p);
    f->read(0, n, back.data());
    f->read(0, n, back.data());
  }
  EXPECT_EQ(std::memcmp(data.data(), back.data(), n), 0);
  EXPECT_EQ(io_stats::global().injected_faults.load(), 2u);
  EXPECT_EQ(io_stats::global().retries.load(), 0u);
}

TEST_F(SafsFaultTest, FaultScopeRestoresPreviousPlan) {
  auto& inj = fault_injector::global();
  EXPECT_FALSE(inj.overridden());
  fault_plan outer;
  outer.seed = 1;
  outer.pread_prob = 0.5;
  {
    fault_scope a(outer);
    EXPECT_TRUE(inj.overridden());
    EXPECT_EQ(inj.snapshot().seed, 1u);
    fault_plan inner;
    inner.seed = 2;
    {
      fault_scope b(inner);
      EXPECT_EQ(inj.snapshot().seed, 2u);
    }
    EXPECT_TRUE(inj.overridden());
    EXPECT_EQ(inj.snapshot().seed, 1u);
    EXPECT_EQ(inj.snapshot().pread_prob, 0.5);
  }
  EXPECT_FALSE(inj.overridden());
}

// ---------------------------------------------------------------------------
// Partition checksums (em_store sidecar)
// ---------------------------------------------------------------------------

class EmChecksumTest : public ::testing::Test {
 protected:
  void init_with(checksum_policy policy) {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.stripes = 3;
    o.stripe_unit = 4096;
    o.io_checksum = policy;
    init(o);
    fault_injector::global().clear();
    io_stats::global().reset();
  }
  void TearDown() override { fault_injector::global().clear(); }

  /// 2-partition f64 EM matrix with a deterministic byte pattern.
  em_store::ptr make_store() {
    auto st = em_store::create(128, 2, scalar_type::f64, 64);
    const std::size_t bytes = st->geom().part_bytes(0, st->type());
    auto data = pattern(bytes, 11);
    st->write_part(0, data.data());
    st->write_part(1, data.data());
    return st;
  }
};

TEST_F(EmChecksumTest, VerifyCatchesOnDiskCorruption) {
  init_with(checksum_policy::verify);
  auto st = make_store();
  ASSERT_TRUE(st->file()->has_checksums());
  for (int s = 0; s < st->file()->num_stripes(); ++s)
    clobber_file(st->file()->stripe_path(s));

  const std::size_t bytes = st->geom().part_bytes(0, st->type());
  std::vector<char> buf(bytes);
  try {
    st->read_part(0, buf.data());
    FAIL() << "expected io_error";
  } catch (const io_error& e) {
    EXPECT_EQ(e.err(), 0);  // corruption, not a syscall failure
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
  EXPECT_GE(io_stats::global().checksum_failures.load(), 1u);
  EXPECT_EQ(io_stats::global().checksum_repairs.load(), 0u);
}

TEST_F(EmChecksumTest, RepairHealsInjectedPrematureEof) {
  init_with(checksum_policy::repair);
  auto st = make_store();
  const std::size_t bytes = st->geom().part_bytes(0, st->type());
  auto want = pattern(bytes, 11);

  fault_plan p;
  p.seed = 50;
  p.short_prob = 1.0;  // the partition read zero-fills...
  p.max_faults = 1;    // ...and the repair re-read runs clean
  std::vector<char> buf(bytes);
  {
    fault_scope scope(p);
    st->read_part(0, buf.data());
  }
  EXPECT_EQ(std::memcmp(want.data(), buf.data(), bytes), 0);
  EXPECT_EQ(io_stats::global().checksum_repairs.load(), 1u);
  EXPECT_EQ(io_stats::global().checksum_failures.load(), 0u);
}

TEST_F(EmChecksumTest, RepairEscalatesOnPersistentCorruption) {
  init_with(checksum_policy::repair);
  auto st = make_store();
  for (int s = 0; s < st->file()->num_stripes(); ++s)
    clobber_file(st->file()->stripe_path(s));

  const std::size_t bytes = st->geom().part_bytes(0, st->type());
  std::vector<char> buf(bytes);
  EXPECT_THROW(st->read_part(0, buf.data()), io_error);
  EXPECT_GE(io_stats::global().checksum_failures.load(), 1u);
}

TEST_F(EmChecksumTest, PartitionsWrittenWithPolicyOffAreNeverVerified) {
  init_with(checksum_policy::off);
  auto st = make_store();  // no CRC recorded for these partitions
  for (int s = 0; s < st->file()->num_stripes(); ++s)
    clobber_file(st->file()->stripe_path(s));

  const std::size_t bytes = st->geom().part_bytes(0, st->type());
  std::vector<char> buf(bytes);
  EXPECT_NO_THROW(st->read_part(0, buf.data()));
  // Flipping the policy on mid-life must not fail pre-policy partitions.
  mutable_conf().io_checksum = checksum_policy::verify;
  EXPECT_NO_THROW(st->read_part(0, buf.data()));
  EXPECT_EQ(io_stats::global().checksum_failures.load(), 0u);
}

// ---------------------------------------------------------------------------
// Engine under faults: absorption, cancellation, recovery
// ---------------------------------------------------------------------------

class EngineFaultTest : public ::testing::Test {
 protected:
  void init_with(checksum_policy policy) {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.num_threads = 4;          // cancellation must coordinate >= 4 workers
    o.io_part_rows = 64;        // many partitions at small n
    o.pcache_bytes = 2048;
    o.small_nrow_threshold = 16;
    o.dispatch_batch = 2;
    o.io_checksum = policy;
    init(o);
    fault_injector::global().clear();
    io_stats::global().reset();
  }
  void TearDown() override { fault_injector::global().clear(); }

  dense_matrix make_em_input(std::size_t n, std::size_t p) const {
    smat h(n, p);
    for (std::size_t j = 0; j < p; ++j)
      for (std::size_t i = 0; i < n; ++i)
        h(i, j) = 0.5 * static_cast<double>(i) -
                  1.25 * static_cast<double>(j) + 3.0;
    return conv_store(dense_matrix::from_smat(h), storage::ext_mem);
  }
};

TEST_F(EngineFaultTest, SeededTransientScheduleKeepsResultsExact) {
  init_with(checksum_policy::verify);
  const std::size_t n = 1000, cols = 7;
  dense_matrix x = make_em_input(n, cols);
  smat h = x.to_smat();

  fault_plan p;
  p.seed = 60;
  p.pread_prob = 0.10;   // well above the 1% acceptance floor
  p.pwrite_prob = 0.10;
  p.latency_prob = 0.05;
  p.latency_us = 50;     // keep the pass fast
  fault_scope scope(p);

  // One pass producing an SSD-resident output, then read it back; plus an
  // aggregation pass. All under the fault schedule.
  dense_matrix y = conv_store(x * 2.0 + 1.0, storage::ext_mem);
  smat got = y.to_smat();
  const double total = agg(x, agg_id::sum).scalar();

  double want_total = 0.0;
  for (std::size_t j = 0; j < cols; ++j)
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got(i, j), h(i, j) * 2.0 + 1.0, 1e-12);
      want_total += h(i, j);
    }
  EXPECT_NEAR(total, want_total, 1e-6);

  // The schedule must actually have fired, and every fault been absorbed.
  EXPECT_GT(io_stats::global().injected_faults.load(), 0u);
  EXPECT_GT(io_stats::global().retries.load(), 0u);
  EXPECT_EQ(io_stats::global().checksum_failures.load(), 0u);
}

TEST_F(EngineFaultTest, PersistentFaultCancelsPassAndReleasesEveryBuffer) {
  init_with(checksum_policy::off);
  dense_matrix x = make_em_input(1000, 7);

  auto& pool = buffer_pool::global();
  const std::size_t count0 = pool.outstanding_count();
  const std::size_t bytes0 = pool.outstanding_bytes();

  {
    fault_plan p;
    p.seed = 61;
    p.pread_prob = 1.0;  // unlimited: every partition read fails hard
    fault_scope scope(p);
    try {
      conv_store(x + 1.0, storage::ext_mem).to_smat();
      FAIL() << "expected io_error";
    } catch (const io_error& e) {
      EXPECT_EQ(e.err(), EIO);  // the original typed error, not a wrapper
      EXPECT_FALSE(e.path().empty());
    }
  }
  // Zero pool-buffer leak: worker chunks, prefetch buffers, staged outputs
  // and in-flight write buffers must all be back.
  EXPECT_EQ(pool.outstanding_count(), count0);
  EXPECT_EQ(pool.outstanding_bytes(), bytes0);

  // The engine must be immediately reusable after the failed pass.
  smat h = x.to_smat();
  smat got = conv_store(x + 1.0, storage::ext_mem).to_smat();
  for (std::size_t j = 0; j < 7; ++j)
    for (std::size_t i = 0; i < 1000; ++i)
      EXPECT_NEAR(got(i, j), h(i, j) + 1.0, 1e-12);
}

TEST_F(EngineFaultTest, CumulativePassCancelsWithoutDeadlock) {
  // cum_col workers block on the previous partition's carry; a cancelled
  // pass must wake those waiters instead of deadlocking them.
  init_with(checksum_policy::off);
  const std::size_t n = 1000;
  dense_matrix x = make_em_input(n, 3);

  {
    fault_plan p;
    p.seed = 62;
    p.pread_prob = 1.0;
    fault_scope scope(p);
    EXPECT_THROW(cum_col(x, bop_id::add).to_smat(), io_error);
  }

  smat h = x.to_smat();
  smat got = cum_col(x, bop_id::add).to_smat();
  for (std::size_t j = 0; j < 3; ++j) {
    double run = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      run += h(i, j);
      ASSERT_NEAR(got(i, j), run, 1e-9) << i << "," << j;
    }
  }
}

// ---------------------------------------------------------------------------
// async_io service rebuild
// ---------------------------------------------------------------------------

TEST(AsyncRebuildTest, RebuildSurfacesDeferredWriteError) {
  // A deferred write error recorded by the old service must surface when
  // conf().io_threads changes, not vanish with the discarded object.
  options o;
  o.em_dir = "/tmp/flashr_test_em";
  o.io_threads = 2;
  init(o);
  fault_injector::global().clear();
  io_stats::global().reset();

  {
    auto st = em_store::create(128, 2, scalar_type::f64, 64);
    const std::size_t bytes = st->geom().part_bytes(0, st->type());
    pool_buffer buf = buffer_pool::global().get(bytes);
    std::memset(buf.data(), 0x5a, bytes);
    {
      fault_plan p;
      p.seed = 63;
      p.pwrite_prob = 1.0;  // the whole retry ladder faults; error deferred
      fault_scope scope(p);
      st->write_part_async(0, std::move(buf));
      // Keep the plan installed until the I/O thread has fully processed
      // the write. pending_writes() does NOT consume the deferred error —
      // the drain after the rebuild must still see it.
      while (async_io::global().pending_writes() > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    options o2 = o;
    o2.io_threads = 3;
    init(o2);
    EXPECT_THROW(async_io::global(), io_error);
    // The next call builds a fresh, working service.
    EXPECT_NO_THROW(async_io::global().drain_writes());
  }
  fault_injector::global().clear();
}

}  // namespace
}  // namespace flashr
