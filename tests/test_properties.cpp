// Property sweeps over engine configurations (DESIGN.md invariants 1-7).
//
// These tests pin down the engine's configuration-independence: the same
// computation must give the same answer for every thread count, I/O
// partition size, Pcache size, stripe count and placement policy, and
// generated matrices must be identical under all of them.
#include <gtest/gtest.h>

#include <cmath>

#include "common/config.h"
#include "core/dense_matrix.h"
#include "core/exec.h"
#include "io/safs.h"
#include "mem/numa.h"
#include "ml/stats.h"

namespace flashr {
namespace {

/// A fixed reference computation with a bit of everything: element chains,
/// broadcast, inner product, several sinks.
struct reference_result {
  double total;
  smat gram;
  smat group_sums;
};

reference_result run_reference(storage st) {
  const std::size_t n = 3000, p = 6;
  dense_matrix X = conv_store(dense_matrix::rnorm(n, p, 0.5, 2.0, 99), st);
  dense_matrix labels = conv_store(
      sapply(dense_matrix::runif(n, 1, 0.0, 4.0, 7), uop_id::floor_v)
          .cast(scalar_type::i64),
      st);
  dense_matrix Y = sqrt(abs(X)) * 0.5 + square(X);
  dense_matrix total = sum(Y);
  dense_matrix gram = crossprod(Y);
  dense_matrix gsums = groupby_row(Y, labels, 4, agg_id::sum);
  materialize_all({total, gram, gsums});
  return {total.scalar(), gram.to_smat(), gsums.to_smat()};
}

struct config_case {
  int threads;
  std::size_t part_rows;
  std::size_t pcache;
  int stripes;
  exec_mode mode;
};

std::string case_name(const ::testing::TestParamInfo<config_case>& i) {
  return "t" + std::to_string(i.param.threads) + "_pr" +
         std::to_string(i.param.part_rows) + "_pc" +
         std::to_string(i.param.pcache) + "_s" +
         std::to_string(i.param.stripes) + "_" +
         std::to_string(static_cast<int>(i.param.mode));
}

class ConfigSweepTest : public ::testing::TestWithParam<config_case> {};

TEST_P(ConfigSweepTest, ReferenceComputationInvariant) {
  const config_case& c = GetParam();
  options o;
  o.em_dir = "/tmp/flashr_test_em";
  o.num_threads = c.threads;
  o.io_part_rows = c.part_rows;
  o.pcache_bytes = c.pcache;
  o.stripes = c.stripes;
  o.mode = c.mode;
  o.small_nrow_threshold = 16;
  init(o);

  // Golden values computed once under the default config.
  static const reference_result* golden = [] {
    options g;
    g.em_dir = "/tmp/flashr_test_em";
    g.small_nrow_threshold = 16;
    init(g);
    return new reference_result(run_reference(storage::in_mem));
  }();

  for (storage st : {storage::in_mem, storage::ext_mem}) {
    reference_result r = run_reference(st);
    EXPECT_NEAR(r.total, golden->total, std::abs(golden->total) * 1e-12);
    EXPECT_LT(r.gram.max_abs_diff(golden->gram), 1e-7);
    EXPECT_LT(r.group_sums.max_abs_diff(golden->group_sums), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConfigSweepTest,
    ::testing::Values(
        config_case{1, 64, 1024, 1, exec_mode::cache_fuse},
        config_case{2, 64, 1024, 2, exec_mode::cache_fuse},
        config_case{4, 128, 2048, 3, exec_mode::cache_fuse},
        config_case{8, 256, 512, 4, exec_mode::cache_fuse},
        config_case{4, 1024, 65536, 2, exec_mode::cache_fuse},
        config_case{3, 64, 1024, 2, exec_mode::mem_fuse},
        config_case{4, 128, 4096, 3, exec_mode::mem_fuse},
        config_case{2, 128, 2048, 2, exec_mode::eager},
        config_case{4, 512, 8192, 5, exec_mode::eager}),
    case_name);

class PropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.io_part_rows = 64;
    o.num_threads = 4;
    o.small_nrow_threshold = 16;
    init(o);
  }
};

TEST_F(PropertyTest, GeneratedMatrixIndependentOfPartitioning) {
  // Same seed, different partition sizes -> identical values.
  smat a, b;
  {
    mutable_conf().io_part_rows = 64;
    a = dense_matrix::rnorm(777, 3, 1, 2, 5).to_smat();
  }
  {
    mutable_conf().io_part_rows = 512;
    b = dense_matrix::rnorm(777, 3, 1, 2, 5).to_smat();
  }
  mutable_conf().io_part_rows = 64;
  EXPECT_EQ(a.max_abs_diff(b), 0.0);
}

TEST_F(PropertyTest, GeneratedMatrixIndependentOfThreads) {
  smat a, b;
  {
    mutable_conf().num_threads = 1;
    a = (dense_matrix::runif(1000, 2, 0, 1, 9) * 2.0).to_smat();
  }
  {
    mutable_conf().num_threads = 8;
    b = (dense_matrix::runif(1000, 2, 0, 1, 9) * 2.0).to_smat();
  }
  mutable_conf().num_threads = 4;
  EXPECT_EQ(a.max_abs_diff(b), 0.0);
}

TEST_F(PropertyTest, IntegerSinksBitIdenticalAcrossThreadCounts) {
  // Invariant 5: integer aggregation is exact regardless of thread count.
  dense_matrix X =
      sapply(dense_matrix::runif(5000, 2, 0, 1000, 3), uop_id::floor_v)
          .cast(scalar_type::i64);
  dense_matrix Xm = conv_store(X, storage::in_mem);
  double first = 0;
  for (int threads : {1, 2, 4, 8}) {
    mutable_conf().num_threads = threads;
    const double s = sum(Xm).scalar();
    if (threads == 1)
      first = s;
    else
      EXPECT_EQ(s, first);
  }
  mutable_conf().num_threads = 4;
}

TEST_F(PropertyTest, OnePassInvariantAcrossDagShapes) {
  // Invariant 4: an EM leaf is read exactly once per fused execution, no
  // matter how many consumers the DAG has.
  dense_matrix X =
      conv_store(dense_matrix::rnorm(64 * 10, 4, 0, 1, 2), storage::ext_mem);
  for (int consumers : {1, 2, 5}) {
    std::vector<dense_matrix> targets;
    for (int c = 0; c < consumers; ++c)
      targets.push_back(sum(X * static_cast<double>(c + 1)));
    io_stats::global().reset();
    materialize_all(targets);
    EXPECT_EQ(io_stats::global().read_ops.load(), 10u)
        << consumers << " consumers";
  }
}

TEST_F(PropertyTest, EagerModeReadsOncePerOperation) {
  // The converse: in eager mode, k operations on an EM leaf cost k passes.
  mutable_conf().mode = exec_mode::eager;
  dense_matrix X =
      conv_store(dense_matrix::rnorm(64 * 8, 2, 0, 1, 2), storage::ext_mem);
  io_stats::global().reset();
  // Chain of 3 element ops + an aggregation, materialized with EM
  // intermediates: each op re-reads its input and writes its output.
  dense_matrix s = sum(((X * 2.0) + 1.0) - 0.5);
  materialize_all({s}, storage::ext_mem);
  mutable_conf().mode = exec_mode::cache_fuse;
  EXPECT_EQ(io_stats::global().read_ops.load(), 4u * 8u);
  EXPECT_EQ(io_stats::global().write_ops.load(), 3u * 8u);
}

TEST_F(PropertyTest, NumaPlacementIsFullyLocal) {
  // Invariant: the executor assigns partition i of every matrix to the same
  // node, so with workers following the mapping, locality is 100%.
  mutable_conf().numa_nodes = 4;
  numa_tracker::global().reset();
  dense_matrix X = conv_store(dense_matrix::rnorm(64 * 16, 3, 0, 1, 4),
                              storage::in_mem);
  sum(X * 2.0).scalar();
  mutable_conf().numa_nodes = 1;
  // The tracker records accesses; the policy keeps every access local
  // because thread home nodes cycle with partition ids the same way.
  EXPECT_GT(numa_tracker::global().local_accesses() +
                numa_tracker::global().remote_accesses(),
            0u);
}

TEST_F(PropertyTest, PcacheRowsArePowerOfTwoAndBounded) {
  for (std::size_t ncol : {1u, 8u, 40u, 513u}) {
    const std::size_t rows = exec::pcache_rows(ncol, conf().io_part_rows);
    EXPECT_GE(rows, 16u);
    EXPECT_LE(rows, conf().io_part_rows);
    EXPECT_EQ(rows & (rows - 1), 0u) << "ncol=" << ncol;
  }
  // Wider matrices get proportionally shorter Pcache chunks.
  EXPECT_LE(exec::pcache_rows(512, 16384), exec::pcache_rows(8, 16384));
}

TEST_F(PropertyTest, Float32PathMatchesFloat64) {
  dense_matrix X64 = conv_store(dense_matrix::rnorm(2000, 3, 0, 1, 6),
                                storage::in_mem);
  dense_matrix X32 = X64.cast(scalar_type::f32);
  EXPECT_EQ(X32.type(), scalar_type::f32);
  const double s64 = sum(X64).scalar();
  const double s32 = sum(X32).scalar();
  EXPECT_NEAR(s32, s64, std::abs(s64) * 1e-3 + 0.5);
  smat g64 = crossprod(X64).to_smat();
  smat g32 = crossprod(X32).to_smat();
  EXPECT_LT(g32.max_abs_diff(g64), 0.05);
}

TEST_F(PropertyTest, ShapeErrorsAreReported) {
  dense_matrix a = dense_matrix::rnorm(100, 3, 0, 1, 1);
  dense_matrix b = dense_matrix::rnorm(100, 4, 0, 1, 2);
  dense_matrix c = dense_matrix::rnorm(200, 3, 0, 1, 3);
  EXPECT_THROW(a + b, shape_error);
  EXPECT_THROW(a + c, shape_error);
  EXPECT_THROW(matmul(a, b), shape_error);
  EXPECT_THROW(sweep_cols(a, smat(1, 5), bop_id::add), shape_error);
  EXPECT_THROW(groupby_row(a, b, 4, agg_id::sum), shape_error);
  EXPECT_THROW(dense_matrix{}.nrow(), error);
}

TEST_F(PropertyTest, TransposedMisuseIsRejected) {
  dense_matrix a = dense_matrix::rnorm(1000, 3, 0, 1, 1);
  dense_matrix at = a.t();
  EXPECT_TRUE(at.is_transposed());
  EXPECT_EQ(at.nrow(), 3u);
  EXPECT_EQ(at.ncol(), 1000u);
  EXPECT_THROW(at + at, error);        // element ops reject transposed talls
  EXPECT_THROW(sum(at), error);
  EXPECT_NO_THROW(matmul(at, a));      // the supported use
}

TEST_F(PropertyTest, ScalarOnNonScalarThrows) {
  dense_matrix a = dense_matrix::rnorm(100, 2, 0, 1, 1);
  EXPECT_THROW(a.scalar(), shape_error);
  EXPECT_NO_THROW(sum(a).scalar());
}

TEST_F(PropertyTest, MaterializeIsIdempotent) {
  dense_matrix a = dense_matrix::rnorm(500, 2, 0, 1, 8) * 3.0;
  a.materialize();
  const double s1 = sum(a).scalar();
  a.materialize();  // no-op
  EXPECT_EQ(sum(a).scalar(), s1);
}

TEST_F(PropertyTest, ConvStoreRoundTrips) {
  dense_matrix a = dense_matrix::rnorm(700, 3, 2, 1, 9);
  dense_matrix em = conv_store(a, storage::ext_mem);
  dense_matrix back = conv_store(em, storage::in_mem);
  EXPECT_EQ(back.to_smat().max_abs_diff(a.to_smat()), 0.0);
}

}  // namespace
}  // namespace flashr
