// io_uring backend tests: parity with the thread-pool backend, fault
// injection through the ring, cancellation cleanliness, the zero-copy
// read→write alias path, graceful fallback, and write-budget wakeups from
// the CQE reaper.
//
// Everything here goes through the public engine surface (options +
// async_io facade); the only backend-specific hooks are
// uring_backend::available() (skip on kernels without io_uring) and the
// force_unavailable() test seam for the fallback test.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/error.h"
#include "core/dense_matrix.h"
#include "core/exec.h"
#include "io/async_io.h"
#include "io/fault.h"
#include "io/safs.h"
#include "io/uring_io.h"
#include "matrix/em_store.h"
#include "mem/buffer_pool.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace flashr {
namespace {

/// Engine options shared by every test here: many small partitions so a
/// pass exercises the prefetch window, several workers so completion-order
/// dispatch actually interleaves.
options base_options() {
  options o;
  o.em_dir = "/tmp/flashr_test_em";
  o.num_threads = 4;
  o.io_part_rows = 64;
  o.pcache_bytes = 2048;
  o.small_nrow_threshold = 16;
  o.dispatch_batch = 2;
  return o;
}

smat host_input(std::size_t n, std::size_t p) {
  smat h(n, p);
  for (std::size_t j = 0; j < p; ++j)
    for (std::size_t i = 0; i < n; ++i)
      h(i, j) = 0.5 * static_cast<double>(i) -
                1.25 * static_cast<double>(j) + 3.0;
  return h;
}

dense_matrix em_input(const smat& h) {
  return conv_store(dense_matrix::from_smat(h), storage::ext_mem);
}

class UringBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!uring_backend::available())
      GTEST_SKIP() << "io_uring not available on this kernel";
    fault_injector::global().clear();
    io_stats::global().reset();
  }
  void TearDown() override { fault_injector::global().clear(); }

  void init_uring(options o) {
    o.io_backend = io_backend_kind::uring;
    init(o);
    ASSERT_STREQ(async_io::active_backend(), "uring");
  }
};

// ---------------------------------------------------------------------------
// Parity: same computation, threads vs uring, in every exec mode
// ---------------------------------------------------------------------------

struct backend_run {
  smat got;
  exec::pass_stats stats;
};

backend_run run_pipeline(io_backend_kind kind, exec_mode mode,
                         const smat& h) {
  options o = base_options();
  o.io_backend = kind;
  o.mode = mode;
  init(o);
  dense_matrix x = em_input(h);
  dense_matrix y = conv_store(x * 2.0 + 1.0, storage::ext_mem);
  backend_run r{y.to_smat(), exec::last_pass_stats()};
  return r;
}

TEST_F(UringBackendTest, ParityWithThreadPoolInAllModes) {
  const std::size_t n = 1000, cols = 7;
  smat h = host_input(n, cols);
  for (exec_mode mode :
       {exec_mode::eager, exec_mode::mem_fuse, exec_mode::cache_fuse}) {
    SCOPED_TRACE(exec_mode_name(mode));
    backend_run t = run_pipeline(io_backend_kind::threads, mode, h);
    backend_run u = run_pipeline(io_backend_kind::uring, mode, h);
    // Bit-identical results (the backends move bytes; they must not touch
    // them), and byte-identical I/O volume for the materializing pass.
    for (std::size_t j = 0; j < cols; ++j)
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(u.got(i, j), t.got(i, j)) << i << "," << j;
    EXPECT_EQ(u.stats.read_bytes, t.stats.read_bytes);
    EXPECT_EQ(u.stats.write_bytes, t.stats.write_bytes);
  }
}

TEST_F(UringBackendTest, TinyRingSaturationStaysBoundedAndCorrect) {
  // The smallest allowed ring (sq 8; the kernel gives cq = 2*sq = 16)
  // against a pass that keeps far more than 16 segments outstanding: every
  // submission overflows into the pending queue and the CQ-capacity
  // in-flight bound engages constantly. Regression test for the
  // CQ-overflow deadlock — submitters must park work instead of spinning
  // on io_uring_enter under the ring mutex the reaper needs.
  options o = base_options();
  o.uring_queue_depth = 8;
  init_uring(o);
  const std::size_t n = 2000, cols = 7;
  smat h = host_input(n, cols);
  dense_matrix x = em_input(h);
  smat got = conv_store(x * 2.0 + 1.0, storage::ext_mem).to_smat();
  for (std::size_t j = 0; j < cols; ++j)
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(got(i, j), h(i, j) * 2.0 + 1.0, 1e-12) << i << "," << j;
}

TEST_F(UringBackendTest, SqpollRunsOrDowngradesGracefully) {
  // With SQPOLL the submitter publishes SQEs for a kernel poller thread and
  // only issues a wakeup when the poller napped (the seq_cst-fenced
  // NEED_WAKEUP check). Kernels/permissions that refuse SQPOLL, or lack
  // IORING_FEAT_SQPOLL_NONFIXED (we submit raw fds), downgrade to plain
  // submission — either way the pass must complete correctly.
  options o = base_options();
  o.uring_sqpoll = true;
  o.uring_queue_depth = 32;
  init_uring(o);
  const std::size_t n = 1000, cols = 7;
  smat h = host_input(n, cols);
  dense_matrix x = em_input(h);
  smat got = conv_store(x - 4.0, storage::ext_mem).to_smat();
  for (std::size_t j = 0; j < cols; ++j)
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(got(i, j), h(i, j) - 4.0, 1e-12) << i << "," << j;
}

// ---------------------------------------------------------------------------
// Fault injection through the ring (synthetic CQEs, res < 0 retry path)
// ---------------------------------------------------------------------------

TEST_F(UringBackendTest, TransientFaultsAbsorbedThroughRing) {
  options o = base_options();
  // An injected short read is a silent premature EOF (zero-fill) by design;
  // only the partition checksum catches it, exactly like the shim path.
  o.io_checksum = checksum_policy::verify;
  init_uring(o);
  const std::size_t n = 1000, cols = 7;
  smat h = host_input(n, cols);
  dense_matrix x = em_input(h);

  fault_plan p;
  p.seed = 81;
  p.pread_prob = 0.15;  // synthetic CQEs with res = -EIO, retried on the ring
  p.pwrite_prob = 0.15;
  fault_scope scope(p);

  smat got = conv_store(x * 2.0 + 1.0, storage::ext_mem).to_smat();
  for (std::size_t j = 0; j < cols; ++j)
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(got(i, j), h(i, j) * 2.0 + 1.0, 1e-12) << i << "," << j;

  EXPECT_GT(io_stats::global().injected_faults.load(), 0u);
  EXPECT_GT(io_stats::global().retries.load(), 0u);
  EXPECT_EQ(io_stats::global().checksum_failures.load(), 0u);
}

TEST_F(UringBackendTest, PersistentFaultCancelsPassAndReleasesEveryBuffer) {
  init_uring(base_options());
  dense_matrix x = em_input(host_input(1000, 7));

  auto& pool = buffer_pool::global();
  const std::size_t count0 = pool.outstanding_count();
  const std::size_t bytes0 = pool.outstanding_bytes();

  {
    fault_plan p;
    p.seed = 82;
    p.pread_prob = 1.0;  // unlimited: every read attempt fails hard
    fault_scope scope(p);
    try {
      conv_store(x + 1.0, storage::ext_mem).to_smat();
      FAIL() << "expected io_error";
    } catch (const io_error& e) {
      EXPECT_EQ(e.err(), EIO);
    }
  }
  // Mid-window cancellation: prefetch buffers, worker chunks, staged
  // outputs and in-flight write buffers must all be home.
  EXPECT_EQ(pool.outstanding_count(), count0);
  EXPECT_EQ(pool.outstanding_bytes(), bytes0);

  // The ring must be immediately reusable after the cancelled pass.
  smat h = x.to_smat();
  smat got = conv_store(x + 1.0, storage::ext_mem).to_smat();
  for (std::size_t j = 0; j < 7; ++j)
    for (std::size_t i = 0; i < 1000; ++i)
      ASSERT_NEAR(got(i, j), h(i, j) + 1.0, 1e-12) << i << "," << j;
}

// ---------------------------------------------------------------------------
// Zero-copy alias lifetime: EM→EM identity conversion
// ---------------------------------------------------------------------------

TEST_F(UringBackendTest, ZeroCopyConversionAliasesReadBuffers) {
  options o = base_options();
  o.obs_profile = true;
  init_uring(o);
  const std::size_t n = 1000, cols = 7;
  smat h = host_input(n, cols);
  dense_matrix x = em_input(h);

  auto& pool = buffer_pool::global();
  const std::size_t count0 = pool.outstanding_count();

  // Identity conversion of an EM matrix back to EM: every partition must be
  // written straight from the buffer its read landed in — no kernel, no
  // staging copy.
  dense_matrix y = conv_store(x, storage::ext_mem);
  exec::pass_stats stats = exec::last_pass_stats();
  EXPECT_GT(stats.zero_copy_chunks, 0u);
  EXPECT_EQ(stats.read_bytes, stats.write_bytes);

  // The leases shared between the pipeline and the in-flight writes must
  // all be home once the pass (which drains its writes) returned.
  EXPECT_EQ(pool.outstanding_count(), count0);

  smat got = y.to_smat();
  for (std::size_t j = 0; j < cols; ++j)
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(got(i, j), h(i, j)) << i << "," << j;

  // Profile evidence: the cast node of the conversion pass spent no kernel
  // and no copy time (the alias path records rows/chunks only).
  bool saw_cast = false;
  for (const obs::pass_profile& pp : obs::profile_history())
    for (const obs::node_profile& np : pp.nodes)
      if (std::strcmp(np.op, "cast") == 0 && np.chunks > 0 &&
          np.kernel_ns == 0 && np.copy_ns == 0)
        saw_cast = true;
  EXPECT_TRUE(saw_cast);
  obs::set_profile_enabled(false);
  obs::profile_clear();
}

// ---------------------------------------------------------------------------
// Graceful fallback under forced ENOSYS
// ---------------------------------------------------------------------------

TEST(UringFallbackTest, ForcedUnavailableFallsBackToThreads) {
  fault_injector::global().clear();
  // Unique uring_queue_depth values force the facade to rebuild (it caches
  // by selection key, so the fallback decision is re-evaluated).
  options o = base_options();
  o.io_backend = io_backend_kind::uring;
  o.uring_queue_depth = 64;
  uring_backend::force_unavailable(true);
  init(o);
  EXPECT_STREQ(async_io::active_backend(), "threads");

  // The engine must keep computing correctly on the fallback backend.
  smat h = host_input(500, 5);
  dense_matrix x = em_input(h);
  smat got = conv_store(x * 3.0, storage::ext_mem).to_smat();
  for (std::size_t j = 0; j < 5; ++j)
    for (std::size_t i = 0; i < 500; ++i)
      ASSERT_NEAR(got(i, j), h(i, j) * 3.0, 1e-12) << i << "," << j;

  // Lifting the shim and changing the key restores the ring.
  uring_backend::force_unavailable(false);
  o.uring_queue_depth = 32;
  init(o);
  if (uring_backend::available())
    EXPECT_STREQ(async_io::active_backend(), "uring");
  else
    EXPECT_STREQ(async_io::active_backend(), "threads");
}

// ---------------------------------------------------------------------------
// Write-budget release from the reaper (throttled submitters must wake)
// ---------------------------------------------------------------------------

TEST_F(UringBackendTest, ReaperReleasesWriteBudget) {
  options o = base_options();
  // Budget of one partition (64 rows x 7 cols x 8 B = 3584 B rounds to one
  // 4 KiB class): every further write must stall until the reaper's
  // complete_write() releases the budget and wakes the submitter.
  o.max_inflight_write_bytes = 4096;
  init_uring(o);
  const std::size_t n = 1000, cols = 7;
  smat h = host_input(n, cols);
  dense_matrix x = em_input(h);

  fault_plan p;
  p.seed = 83;
  p.latency_prob = 1.0;  // keep completions in flight long enough to stall
  p.latency_us = 1000;
  fault_scope scope(p);

  smat got = conv_store(x + 2.0, storage::ext_mem).to_smat();
  exec::pass_stats stats = exec::last_pass_stats();
  for (std::size_t j = 0; j < cols; ++j)
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(got(i, j), h(i, j) + 2.0, 1e-12) << i << "," << j;

  // The pass wrote ~16 partitions through a one-partition budget: the
  // throttle must have engaged, and the high-water mark must respect it.
  EXPECT_GT(stats.write_throttle_stalls, 0u);
  EXPECT_LE(stats.write_inflight_hwm, std::size_t{4096});
}

// The reaper and completion-dispatch threads must trace under their own
// names — not anonymously — so post-mortem flight tails and Perfetto
// views attribute I/O completion work to the right track. The io.read /
// io.write spans dispatch from the uring-disp-* pool, so those tracks
// carry real events (check_trace.py --require-track 'uring-*' pins the
// same contract on the CI trace artifact).
TEST_F(UringBackendTest, CompletionThreadsTraceUnderUringTracks) {
  options o = base_options();
  o.obs_trace = true;
  init_uring(o);
  obs::trace_clear();

  smat h = host_input(1000, 7);
  dense_matrix x = em_input(h);
  (void)conv_store(x * 2.0 + 1.0, storage::ext_mem).to_smat();

  obs::trace_summary tsum;
  const std::string json = obs::trace_json(&tsum);
  EXPECT_GT(tsum.events, 0u);
  EXPECT_NE(json.find("\"args\":{\"name\":\"uring-reap\"}"),
            std::string::npos)
      << "reaper track missing from trace";
  EXPECT_NE(json.find("\"args\":{\"name\":\"uring-disp-0\"}"),
            std::string::npos)
      << "dispatch-pool track missing from trace";
  // Completion spans land on the dispatch pool; the reaper marks each
  // non-empty harvest. Both track families must carry real events, which
  // is exactly what --require-track asserts on the CI artifact.
  EXPECT_NE(json.find("\"name\":\"io.read\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"uring.reap\""), std::string::npos);
}

}  // namespace
}  // namespace flashr
