// Fidelity tests: the paper's in-text example programs (Figure 2: logistic
// regression via gradient descent with line search; Figure 3: k-means with
// raw GenOps) transcribed line by line against this library's API. These
// pin the claim that algorithms written in the paper's style run unchanged
// and converge.
#include <gtest/gtest.h>

#include <cmath>

#include "common/config.h"
#include "common/rng.h"
#include "core/dense_matrix.h"

namespace flashr {
namespace {

class PaperExampleTest : public ::testing::TestWithParam<storage> {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.io_part_rows = 256;
    init(o);
  }
  dense_matrix place(const dense_matrix& m) const {
    return conv_store(m, GetParam());
  }
};

// --------------------------------------------------------------------------
// Figure 2: "A simplified implementation of logistic regression using
// gradient descent with line search."
//
//   grad <- function(X,y,w) (t(X) %*% (1/(1+exp(-X%*%t(w)))-y))/length(y)
//   cost <- function(X,y,w)
//     sum(y*(-X%*%t(w))+log(1+exp(X%*%t(w))))/length(y)
//   theta <- matrix(rep(0, num.features), nrow=1)
//   for (i in 1:max.iters) {
//     g <- grad(X, y, theta); l <- cost(X, y, theta)
//     eta <- 1; delta <- 0.5 * (-g) %*% t(g)
//     l2 <- as.vector(cost(X, y, theta+eta*(-g)))
//     while (l2 < as.vector(l)+delta*eta) eta <- eta * 0.2
//     theta <- theta + (-g) * eta
//   }
// --------------------------------------------------------------------------

namespace fig2 {

// theta is a 1 x p R matrix; X %*% t(w) is the n x 1 logit vector.
dense_matrix grad(const dense_matrix& X, const dense_matrix& y,
                  const dense_matrix& theta) {
  dense_matrix logits = matmul(X, theta.t());
  return matmul(X.t(), sigmoid(logits) - y) /
         static_cast<double>(y.nrow());
}

double cost(const dense_matrix& X, const dense_matrix& y,
            const dense_matrix& theta) {
  dense_matrix m = matmul(X, theta.t());
  // sum(y*(-m) + log(1+exp(m)))/n, computed stably.
  dense_matrix terms = log1p(exp(-abs(m))) + pmax(m, 0.0) - y * m;
  return sum(terms).scalar() / static_cast<double>(y.nrow());
}

}  // namespace fig2

TEST_P(PaperExampleTest, Figure2LogisticGradientDescent) {
  const std::size_t n = 4000, p = 3;
  smat h(n, p), lab(n, 1);
  rng64 rng(11);
  for (std::size_t i = 0; i < n; ++i) {
    double logit = -0.5;
    for (std::size_t j = 0; j < p; ++j) {
      h(i, j) = rng.next_normal();
      logit += (j == 0 ? 2.0 : -1.0) * h(i, j);
    }
    lab(i, 0) = rng.next_uniform() < 1 / (1 + std::exp(-logit)) ? 1 : 0;
  }
  dense_matrix X = place(dense_matrix::from_smat(h));
  dense_matrix y = place(dense_matrix::from_smat(lab));

  // theta <- matrix(rep(0, num.features), nrow=1)
  dense_matrix theta = dense_matrix::from_smat(smat(1, p));
  double initial_cost = fig2::cost(X, y, theta);
  double l = initial_cost;

  for (int iter = 0; iter < 15; ++iter) {
    dense_matrix g = fig2::grad(X, y, theta);           // p x 1 sink
    l = fig2::cost(X, y, theta);
    double eta = 1.0;
    // delta = 0.5 * (-g)' (-g) — the expected decrease per unit step.
    const double delta = -0.5 * sum(square(g)).scalar();
    // Backtracking line search exactly as the figure's while loop.
    dense_matrix theta_g = dense_matrix::from_smat(g.to_smat().t());  // 1 x p
    for (int ls = 0; ls < 20; ++ls) {
      dense_matrix trial =
          dense_matrix::from_smat(theta.to_smat() + theta_g.to_smat() * -eta);
      const double l2 = fig2::cost(X, y, trial);
      if (l2 < l + delta * eta) break;
      eta *= 0.2;
    }
    theta = dense_matrix::from_smat(theta.to_smat() +
                                    theta_g.to_smat() * -eta);
  }
  const double final_cost = fig2::cost(X, y, theta);
  EXPECT_LT(final_cost, initial_cost * 0.8);
  // Recovered signs of the planted weights.
  smat th = theta.to_smat();
  EXPECT_GT(th(0, 0), 0.5);
  EXPECT_LT(th(0, 1), -0.2);
}

// --------------------------------------------------------------------------
// Figure 3: "A simplified implementation of k-means" with raw GenOps:
//
//   while (num.moves > 0) {
//     D <- inner.prod(X, t(C), "euclidean", "+")
//     old.I <- I
//     I <- agg.row(D, "which.min")
//     I <- set.cache(I, TRUE)
//     CNT <- groupby.row(rep.int(1, nrow(I)), I, "+")
//     C <- sweep(groupby.row(X, I, "+"), 2, CNT, "/")
//     if (!is.null(old.I)) num.moves <- as.vector(sum(old.I != I))
//   }
// --------------------------------------------------------------------------

TEST_P(PaperExampleTest, Figure3KmeansWithRawGenOps) {
  const std::size_t n = 3000, p = 4, k = 3;
  smat h(n, p);
  rng64 rng(13);
  for (std::size_t i = 0; i < n; ++i) {
    const double shift = static_cast<double>(i % k) * 7.0;
    for (std::size_t j = 0; j < p; ++j) h(i, j) = shift + rng.next_normal();
  }
  dense_matrix X = place(dense_matrix::from_smat(h));
  smat C = gather_rows(X, {0, 1, 2});  // k x p initial centers

  dense_matrix I;
  std::size_t num_moves = n;
  int iters = 0;
  while (num_moves > 0 && iters < 50) {
    // D <- inner.prod(X, t(C), "euclidean", "+")
    dense_matrix D = inner_prod(X, C.t(), bop_id::sqdiff, agg_id::sum);
    dense_matrix old_I = I;
    // I <- agg.row(D, "which.min"); I <- set.cache(I, TRUE)
    I = which_min_row(D);
    I.set_cache(true);
    // CNT <- groupby.row(rep.int(1, nrow(I)), I, "+")  [== table(I)]
    dense_matrix CNT = count_groups(I, k);
    // groupby.row(X, I, "+")
    dense_matrix S = groupby_row(X, I, k, agg_id::sum);
    // num.moves <- as.vector(sum(old.I != I))
    dense_matrix moves;
    std::vector<dense_matrix> targets{CNT, S};
    if (old_I.valid()) {
      moves = sum(ne(I, old_I));
      targets.push_back(moves);
    }
    materialize_all(targets);  // one pass, exactly like the figure's DAG

    // C <- sweep(..., 2, CNT, "/") — centers on the host.
    smat cnt = CNT.to_smat(), s = S.to_smat();
    for (std::size_t c = 0; c < k; ++c)
      if (cnt(c, 0) > 0)
        for (std::size_t j = 0; j < p; ++j) C(c, j) = s(c, j) / cnt(c, 0);
    num_moves = old_I.valid()
                    ? static_cast<std::size_t>(moves.scalar())
                    : n;
    ++iters;
  }
  EXPECT_LT(iters, 50);  // converged: no point moves
  // Each recovered center sits near one planted blob mean (0, 7 or 14).
  for (std::size_t c = 0; c < k; ++c) {
    const double v = C(c, 0);
    const double nearest =
        std::min({std::abs(v - 0.0), std::abs(v - 7.0), std::abs(v - 14.0)});
    EXPECT_LT(nearest, 0.5) << "center " << c << " at " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Storages, PaperExampleTest,
                         ::testing::Values(storage::in_mem, storage::ext_mem),
                         [](const ::testing::TestParamInfo<storage>& i) {
                           return i.param == storage::in_mem ? "im" : "em";
                         });

}  // namespace
}  // namespace flashr
