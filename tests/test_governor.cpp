// Overload-resilience tests: the resource governor's admission control and
// degradation ladder, the pass watchdog's deadline and hung-I/O supervision,
// and the typed timeout/overload errors they surface.
//
// The deterministic `stall` fault site (io/fault.h) is what makes the
// hung-I/O tests reliable: completion delivery is delayed *after* the data
// lands, so the watchdog observes reads in flight with no completions —
// exactly the failure mode of an SSD whose completions stop arriving —
// without depending on wall-clock scheduling luck.
//
// Invariants under test:
//  * degradation never changes results (bit-identical elementwise output in
//    all three exec modes, under both memory and inflight-I/O budgets);
//  * a stalled or over-deadline pass fails with a typed timeout_error in
//    bounded time, with the buffer pool back at its baseline;
//  * admission never over-commits the budget, even under concurrency, and
//    queued passes honour the pass deadline;
//  * every degradation step is observable: last_pass_stats(), the governor
//    metrics, explain_analyze(), and /healthz.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/error.h"
#include "common/timer.h"
#include "core/dense_matrix.h"
#include "core/exec.h"
#include "core/governor.h"
#include "io/fault.h"
#include "mem/buffer_pool.h"
#include "obs/metrics.h"
#include "obs/stats_server.h"

namespace flashr {
namespace {

std::uint64_t metric(const char* name) {
  return obs::metrics_registry::global().value(name);
}

class GovernorTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 1000;
  static constexpr std::size_t kCols = 7;
  static constexpr std::size_t kPartRows = 64;
  static constexpr std::size_t kParts = (kN + kPartRows - 1) / kPartRows;
  /// Partition 0 of the EM input: what one window slot or worker claim pins.
  static constexpr std::size_t kLeafPartBytes =
      kPartRows * kCols * sizeof(double);

  void init_with(exec_mode mode = exec_mode::cache_fuse) {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.num_threads = 4;
    o.io_part_rows = kPartRows;
    o.pcache_bytes = 2048;  // 32-row Pcache chunks for 7 f64 columns
    o.small_nrow_threshold = 16;
    o.dispatch_batch = 2;  // with io_threads=2: default prefetch depth 8
    o.mode = mode;
    init(o);
    fault_injector::global().clear();
  }
  void TearDown() override { fault_injector::global().clear(); }

  dense_matrix make_em_input() const {
    smat h(kN, kCols);
    for (std::size_t j = 0; j < kCols; ++j)
      for (std::size_t i = 0; i < kN; ++i)
        h(i, j) = 0.5 * static_cast<double>(i) -
                  1.25 * static_cast<double>(j) + 3.0;
    return conv_store(dense_matrix::from_smat(h), storage::ext_mem);
  }
};

// ---------------------------------------------------------------------------
// Degradation ladder: tight budgets shrink the pass, never its results
// ---------------------------------------------------------------------------

// A memory budget below the pass's configured footprint walks the ladder
// (depth halving, then Pcache chunk shrinking, mode-specific rungs) until
// the pass fits — and the degraded pass produces bit-identical elementwise
// output in all three exec modes.
TEST_F(GovernorTest, MemoryBudgetDegradesWithoutChangingResults) {
  const exec_mode modes[] = {exec_mode::eager, exec_mode::mem_fuse,
                             exec_mode::cache_fuse};
  for (exec_mode mode : modes) {
    init_with(mode);
    dense_matrix x = make_em_input();
    smat h = x.to_smat();

    // Tight enough to reject the depth-8 window (~57 KiB footprint for this
    // DAG), loose enough that a degraded configuration fits. Keep the
    // write-behind allowance to one partition so eager-mode EM
    // intermediates fit too.
    mutable_conf().mem_budget_bytes = 40000;
    mutable_conf().max_inflight_write_bytes = kLeafPartBytes;

    const std::uint64_t steps0 = metric("governor.degrade_steps");
    dense_matrix y = x * 2.0 + 1.0;
    y.materialize(storage::in_mem);

    // Elementwise output must be bit-identical to the host computation.
    smat got = y.to_smat();
    for (std::size_t j = 0; j < kCols; ++j)
      for (std::size_t i = 0; i < kN; ++i)
        ASSERT_EQ(got(i, j), h(i, j) * 2.0 + 1.0)
            << "mode " << exec_mode_name(mode) << " at " << i << "," << j;

    // The ladder ran and is visible: per-pass stats record each step in
    // order, and the cumulative governor metric advanced with them.
    const exec::pass_stats ps = exec::last_pass_stats();
    EXPECT_GE(ps.degrade_steps, 1u) << exec_mode_name(mode);
    EXPECT_NE(ps.degrade_path.find("depth:8->4"), std::string::npos)
        << exec_mode_name(mode) << ": " << ps.degrade_path;
    EXPECT_GE(metric("governor.degrade_steps"), steps0 + ps.degrade_steps);

    // Aggregation sanity against a host fold (the engine's own fold order
    // differs from this naive loop, so tolerance — exact schedule
    // invariance is pinned by AggregationIsScheduleAndChunkInvariant).
    double want = 0.0;
    for (std::size_t j = 0; j < kCols; ++j)
      for (std::size_t i = 0; i < kN; ++i) want += h(i, j);
    EXPECT_NEAR(agg(x, agg_id::sum).scalar(), want, 1e-6);

    // Degraded accounting is per-pass: health recovers once the pass ends.
    EXPECT_TRUE(exec::resource_governor::global().health().ok);
  }
}

// The "degradation never changes results" guarantee rests on sink partials
// being produced per partition and merged in ascending partition order, with
// chunk-size-invariant accumulate kernels underneath: the aggregate must be
// bit-identical across thread counts, prefetch depths, Pcache chunk sizes
// and governor budgets. Before the ordered merge, per-thread partials merged
// in thread order made the same binary produce different last bits run to
// run — this pins the invariant directly.
TEST_F(GovernorTest, AggregationIsScheduleAndChunkInvariant) {
  init_with();
  dense_matrix x = make_em_input();

  // Reference: one worker, synchronous reads — no scheduling freedom.
  mutable_conf().num_threads = 1;
  mutable_conf().prefetch_depth = 0;
  auto run = [&] {
    dense_matrix y = (x * 1.0000001 + 0.5) * x - x / 3.0;
    return agg(y, agg_id::sum).scalar();
  };
  const double ref = run();
  const dense_matrix gref = crossprod(x);

  const std::size_t chunks[] = {2048, 64 * 1024};
  const int depths[] = {8, 2, 0};
  for (const std::size_t pc : chunks) {
    for (const int d : depths) {
      mutable_conf().num_threads = 4;
      mutable_conf().pcache_bytes = pc;
      mutable_conf().prefetch_depth = d;
      ASSERT_EQ(run(), ref) << "pcache " << pc << " depth " << d;
      const dense_matrix g = crossprod(x);
      for (std::size_t i = 0; i < kCols; ++i)
        for (std::size_t j = 0; j < kCols; ++j)
          ASSERT_EQ(g.at(i, j), gref.at(i, j))
              << "pcache " << pc << " depth " << d << " at " << i << "," << j;
    }
  }

  // And under a budget that walks the full ladder (depth + chunk rungs).
  mutable_conf().num_threads = 4;
  mutable_conf().prefetch_depth = -1;
  mutable_conf().pcache_bytes = 64 * 1024;
  mutable_conf().mem_budget_bytes = 40000;
  mutable_conf().max_inflight_write_bytes = kLeafPartBytes;
  ASSERT_EQ(run(), ref);
  EXPECT_GE(exec::last_pass_stats().degrade_steps, 1u);
}

// An inflight-I/O budget alone (no memory budget) shrinks only the prefetch
// window: depth 8 issues 8 concurrent leaf reads, so a budget of 4 costs
// exactly one halving.
TEST_F(GovernorTest, InflightIoBudgetShrinksThePrefetchWindow) {
  init_with();
  dense_matrix x = make_em_input();
  smat h = x.to_smat();
  mutable_conf().max_inflight_io = 4;

  dense_matrix y = x * 3.0 - 1.0;
  y.materialize(storage::in_mem);
  smat got = y.to_smat();
  for (std::size_t j = 0; j < kCols; ++j)
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(got(i, j), h(i, j) * 3.0 - 1.0);

  const exec::pass_stats ps = exec::last_pass_stats();
  EXPECT_EQ(ps.degrade_path, "depth:8->4");
  EXPECT_EQ(ps.degrade_steps, 1u);
}

// A budget nothing can satisfy: the fused pass exhausts the ladder, falls
// back to node-at-a-time eager passes, and when even those cannot fit, the
// caller gets a typed, transient overload_error — with nothing leaked and
// the engine healthy afterwards.
TEST_F(GovernorTest, ImpossibleBudgetSurfacesTransientOverload) {
  init_with(exec_mode::cache_fuse);
  dense_matrix x = make_em_input();
  smat h = x.to_smat();

  auto& pool = buffer_pool::global();
  const std::size_t count0 = pool.outstanding_count();
  const std::size_t bytes0 = pool.outstanding_bytes();
  const std::uint64_t rejects0 = metric("governor.rejects");

  // Smaller than even one worker claim: no rung of the ladder can fit.
  mutable_conf().mem_budget_bytes = 1000;
  dense_matrix y = x * 2.0 + 1.0;
  try {
    y.materialize(storage::in_mem);
    FAIL() << "expected overload_error";
  } catch (const overload_error& e) {
    EXPECT_TRUE(e.transient());
    EXPECT_TRUE(is_transient(std::make_exception_ptr(e)));
    EXPECT_GT(e.requested(), e.budget());
    EXPECT_EQ(e.budget(), 1000u);
  }
  EXPECT_GE(metric("governor.rejects"), rejects0 + 1);

  // The full ladder is on record, including the mode fallback rung.
  const exec::pass_stats ps = exec::last_pass_stats();
  EXPECT_NE(ps.degrade_path.find("mode:cache-fuse->eager"), std::string::npos)
      << ps.degrade_path;

  // Admission precedes execution: nothing ran, nothing leaked.
  EXPECT_EQ(pool.outstanding_count(), count0);
  EXPECT_EQ(pool.outstanding_bytes(), bytes0);
  EXPECT_TRUE(exec::resource_governor::global().health().ok);

  // Lifting the budget makes the identical DAG succeed, exactly.
  mutable_conf().mem_budget_bytes = 0;
  smat got = (x * 2.0 + 1.0).to_smat();
  for (std::size_t j = 0; j < kCols; ++j)
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(got(i, j), h(i, j) * 2.0 + 1.0);
}

// ---------------------------------------------------------------------------
// Queued admission: contention queues, deadlines bound the wait
// ---------------------------------------------------------------------------

// With the budget held by another reservation, a fitting pass queues; its
// deadline is enforced *while queued* (a queued pass has no running workers
// for the watchdog to cancel) and expiry surfaces the same timeout_error.
TEST_F(GovernorTest, QueuedPassHonoursItsDeadline) {
  init_with();
  dense_matrix x = make_em_input();
  smat h = x.to_smat();
  mutable_conf().mem_budget_bytes = 100000;

  auto& gov = exec::resource_governor::global();
  exec::resource_governor::reservation hog;
  exec::resource_governor::footprint fp;
  fp.bytes = 95000;  // fits alone; leaves no room for a real pass
  ASSERT_EQ(gov.try_admit(fp, hog), exec::resource_governor::verdict::admitted);

  exec::materialize_opts opts;
  opts.deadline_ms = 100;
  const std::uint64_t t0 = now_ns();
  dense_matrix y = x + 1.0;
  try {
    y.materialize(storage::in_mem, opts);
    FAIL() << "expected timeout_error";
  } catch (const timeout_error& e) {
    EXPECT_EQ(e.limit_ms(), 100u);
    EXPECT_NE(std::string(e.what()).find("queued"), std::string::npos);
    EXPECT_GE(e.elapsed_ns(), 100u * 1000000u);
  }
  // Bounded failure: expiry plus scheduling slack, nowhere near a hang.
  EXPECT_LT(now_ns() - t0, 5ull * 1000000000ull);

  // Releasing the contending reservation lets the same DAG run, exactly.
  hog.release();
  smat got = (x + 1.0).to_smat();
  for (std::size_t j = 0; j < kCols; ++j)
    for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(got(i, j), h(i, j) + 1.0);
  EXPECT_TRUE(gov.health().ok);
}

// governor_fail_fast converts the queue into an immediate, typed, transient
// overload_error — the caller is expected to retry or shed load.
TEST_F(GovernorTest, FailFastRejectsContendedAdmissionImmediately) {
  init_with();
  dense_matrix x = make_em_input();
  mutable_conf().mem_budget_bytes = 100000;
  mutable_conf().governor_fail_fast = true;

  auto& gov = exec::resource_governor::global();
  exec::resource_governor::reservation hog;
  exec::resource_governor::footprint fp;
  fp.bytes = 95000;
  ASSERT_EQ(gov.try_admit(fp, hog), exec::resource_governor::verdict::admitted);

  const std::uint64_t t0 = now_ns();
  dense_matrix y = x + 1.0;
  try {
    y.materialize(storage::in_mem);
    FAIL() << "expected overload_error";
  } catch (const overload_error& e) {
    EXPECT_TRUE(e.transient());
    EXPECT_NE(std::string(e.what()).find("fail-fast"), std::string::npos);
  }
  EXPECT_LT(now_ns() - t0, 1ull * 1000000000ull) << "fail-fast must not wait";
  hog.release();
}

// While a pass is genuinely queued for budget, /healthz flips to 503 with a
// JSON reason; it recovers to 200 once the queue drains. The queued pass
// completes with exact results and records its admission wait.
TEST_F(GovernorTest, HealthzReports503WhileAPassIsQueued) {
  init_with();
  dense_matrix x = make_em_input();
  smat h = x.to_smat();
  mutable_conf().mem_budget_bytes = 100000;

  auto& gov = exec::resource_governor::global();
  exec::resource_governor::reservation hog;
  exec::resource_governor::footprint fp;
  fp.bytes = 95000;
  ASSERT_EQ(gov.try_admit(fp, hog), exec::resource_governor::verdict::admitted);

  dense_matrix y = x * 5.0;
  std::atomic<bool> done{false};
  std::thread runner([&] {
    exec::materialize_opts opts;
    opts.deadline_ms = 10000;  // generous: the test releases the hog below
    y.materialize(storage::in_mem, opts);
    done.store(true, std::memory_order_release);
  });

  // Wait for the pass to reach the queue, then observe the 503.
  const std::uint64_t t0 = now_ns();
  while (gov.health().queued_passes == 0 &&
         now_ns() - t0 < 5ull * 1000000000ull)
    std::this_thread::yield();
  ASSERT_GT(gov.health().queued_passes, 0u) << "pass never queued";
  const std::string resp = obs::stats_server::http_response("/healthz");
  EXPECT_NE(resp.find("503 Service Unavailable"), std::string::npos);
  EXPECT_NE(resp.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(resp.find("queued"), std::string::npos);

  hog.release();
  runner.join();
  ASSERT_TRUE(done.load(std::memory_order_acquire));

  smat got = y.to_smat();
  for (std::size_t j = 0; j < kCols; ++j)
    for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(got(i, j), h(i, j) * 5.0);
  const exec::pass_stats ps = exec::last_pass_stats();
  EXPECT_GE(ps.admission_waits, 1u);
  EXPECT_GT(ps.admission_wait_ns, 0u);
  EXPECT_TRUE(gov.health().ok);
  EXPECT_NE(obs::stats_server::http_response("/healthz").find("200 OK"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Watchdog: hung I/O and pass deadlines cancel through the zero-leak path
// ---------------------------------------------------------------------------

// Every completion delivery stalls 150ms while the stall bound is 50ms: the
// watchdog must trip ("reads in flight, no completion"), cancel the pass
// cooperatively, and surface a typed timeout_error in bounded time with the
// buffer pool back at baseline.
TEST_F(GovernorTest, StalledCompletionsTripTheWatchdog) {
  init_with();
  dense_matrix x = make_em_input();
  smat h = x.to_smat();
  mutable_conf().watchdog_stall_ms = 50;

  auto& pool = buffer_pool::global();
  const std::size_t count0 = pool.outstanding_count();
  const std::size_t bytes0 = pool.outstanding_bytes();
  const std::uint64_t trips0 = metric("governor.stall_trips");

  const std::uint64_t t0 = now_ns();
  {
    fault_plan p;
    p.seed = 90;
    p.stall_prob = 1.0;
    p.stall_us = 150000;
    fault_scope scope(p);
    dense_matrix y = x + 1.0;
    try {
      y.materialize(storage::in_mem);
      FAIL() << "expected timeout_error";
    } catch (const timeout_error& e) {
      EXPECT_EQ(e.limit_ms(), 50u);
      EXPECT_NE(std::string(e.what()).find("hung I/O"), std::string::npos);
      EXPECT_GE(e.elapsed_ns(), 50u * 1000000u);
    }
  }
  // Never hangs: the trip fires within ~one watchdog poll of the stall
  // bound, and teardown only waits out the already-injected delivery
  // stalls (the zero-leak settle). 10s is orders of magnitude of slack.
  EXPECT_LT(now_ns() - t0, 10ull * 1000000000ull);
  EXPECT_GE(metric("governor.stall_trips"), trips0 + 1);

  // Cooperative cancellation ran the normal teardown: pool at baseline.
  EXPECT_EQ(pool.outstanding_count(), count0);
  EXPECT_EQ(pool.outstanding_bytes(), bytes0);
  EXPECT_TRUE(exec::resource_governor::global().health().ok);

  // With completions flowing again the same DAG succeeds, exactly.
  smat got = (x + 1.0).to_smat();
  for (std::size_t j = 0; j < kCols; ++j)
    for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(got(i, j), h(i, j) + 1.0);
}

// A per-call deadline on a healthy-but-slow pass (every pread delayed):
// the watchdog cancels at the deadline and the typed error carries it.
TEST_F(GovernorTest, DeadlineCancelsARunningPass) {
  init_with();
  dense_matrix x = make_em_input();
  smat h = x.to_smat();

  auto& pool = buffer_pool::global();
  const std::size_t count0 = pool.outstanding_count();
  const std::size_t bytes0 = pool.outstanding_bytes();
  const std::uint64_t trips0 = metric("governor.deadline_trips");

  const std::uint64_t t0 = now_ns();
  {
    fault_plan p;
    p.seed = 91;
    p.latency_prob = 1.0;
    p.latency_us = 5000;  // 16 partitions / 2 I/O threads: >= 40ms of reads
    fault_scope scope(p);
    exec::materialize_opts opts;
    opts.deadline_ms = 20;
    dense_matrix y = x * 2.0 + 1.0;
    try {
      y.materialize(storage::in_mem, opts);
      FAIL() << "expected timeout_error";
    } catch (const timeout_error& e) {
      EXPECT_EQ(e.limit_ms(), 20u);
      EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos);
      EXPECT_GE(e.elapsed_ns(), 20u * 1000000u);
    }
  }
  EXPECT_LT(now_ns() - t0, 10ull * 1000000000ull);
  EXPECT_GE(metric("governor.deadline_trips"), trips0 + 1);
  EXPECT_EQ(pool.outstanding_count(), count0);
  EXPECT_EQ(pool.outstanding_bytes(), bytes0);

  smat got = (x * 2.0 + 1.0).to_smat();
  for (std::size_t j = 0; j < kCols; ++j)
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(got(i, j), h(i, j) * 2.0 + 1.0);
}

// Deadline firing on a pass that already walked the degradation ladder: the
// degraded retry is cancelled cleanly, the steps stay on record, and the
// engine is healthy afterwards.
TEST_F(GovernorTest, DeadlineDuringDegradedPassCancelsCleanly) {
  init_with();
  dense_matrix x = make_em_input();
  mutable_conf().mem_budget_bytes = 40000;  // forces depth degradation

  auto& pool = buffer_pool::global();
  const std::size_t count0 = pool.outstanding_count();
  const std::size_t bytes0 = pool.outstanding_bytes();

  fault_plan p;
  p.seed = 92;
  p.latency_prob = 1.0;
  p.latency_us = 5000;
  fault_scope scope(p);
  exec::materialize_opts opts;
  opts.deadline_ms = 25;
  dense_matrix y = x * 2.0 + 1.0;
  EXPECT_THROW(y.materialize(storage::in_mem, opts), timeout_error);

  const exec::pass_stats ps = exec::last_pass_stats();
  EXPECT_GE(ps.degrade_steps, 1u) << "the pass degraded before the deadline";
  EXPECT_EQ(pool.outstanding_count(), count0);
  EXPECT_EQ(pool.outstanding_bytes(), bytes0);
  EXPECT_TRUE(exec::resource_governor::global().health().ok);
}

// ---------------------------------------------------------------------------
// Concurrent admission: no over-commit, no deadlock (TSan-gated)
// ---------------------------------------------------------------------------

TEST_F(GovernorTest, ConcurrentAdmissionNeverOvercommitsTheBudget) {
  init_with();
  dense_matrix x = make_em_input();
  smat h = x.to_smat();
  constexpr std::size_t kBudget = 10000;
  mutable_conf().mem_budget_bytes = kBudget;

  auto& gov = exec::resource_governor::global();
  const std::uint64_t admitted0 = metric("governor.admitted");

  // 6 threads x 40 blocking admissions against a budget that fits ~2 at a
  // time. Each holder charges a shadow accumulator while its reservation is
  // live; the governor's invariant makes the shadow never exceed the
  // budget. gtest assertions are not thread-safe, so violations are counted
  // and asserted after the join.
  constexpr int kThreads = 6;
  constexpr int kIters = 40;
  std::atomic<std::size_t> in_use{0};
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        exec::resource_governor::footprint fp;
        fp.bytes = 3000 + 1000 * static_cast<std::size_t>((t * 7 + i) % 5);
        exec::resource_governor::reservation r = gov.admit(
            static_cast<std::uint64_t>(t * kIters + i), fp,
            /*deadline_ns=*/0, /*deadline_ms=*/0);
        const std::size_t now_used =
            in_use.fetch_add(fp.bytes, std::memory_order_acq_rel) + fp.bytes;
        if (now_used > kBudget) violations.fetch_add(1);
        std::this_thread::yield();
        in_use.fetch_sub(fp.bytes, std::memory_order_acq_rel);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_GE(metric("governor.admitted"),
            admitted0 + static_cast<std::uint64_t>(kThreads) * kIters);
  const auto health = gov.health();
  EXPECT_TRUE(health.ok);
  EXPECT_EQ(health.reserved_bytes, 0u);
  EXPECT_EQ(health.active_passes, 0u);

  // The budget is still live for real passes: a tight-budget materialize
  // degrades, completes exactly, and leaves the pool at baseline.
  auto& pool = buffer_pool::global();
  const std::size_t count0 = pool.outstanding_count();
  const std::size_t bytes0 = pool.outstanding_bytes();
  mutable_conf().mem_budget_bytes = 40000;
  smat got = (x * 2.0 + 1.0).to_smat();
  for (std::size_t j = 0; j < kCols; ++j)
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(got(i, j), h(i, j) * 2.0 + 1.0);
  EXPECT_EQ(pool.outstanding_count(), count0);
  EXPECT_EQ(pool.outstanding_bytes(), bytes0);
}

// ---------------------------------------------------------------------------
// Observability: schedules, metrics, explain_analyze, /healthz
// ---------------------------------------------------------------------------

// The stall schedule is a pure function of (seed, site, per-site index):
// two identical runs inject the same number of completion stalls.
TEST_F(GovernorTest, StallScheduleIsDeterministic) {
  init_with();
  dense_matrix x = make_em_input();

  fault_plan p;
  p.seed = 93;
  p.stall_prob = 0.5;
  p.stall_us = 100;  // harmless delays: determinism is what's under test

  fault_injector::global().install(p);
  (void)agg(x, agg_id::sum).scalar();
  const std::size_t first = fault_injector::global().injected();

  fault_injector::global().install(p);  // re-install: reset the site counter
  (void)agg(x, agg_id::sum).scalar();
  const std::size_t second = fault_injector::global().injected();
  fault_injector::global().clear();

  EXPECT_GT(first, 0u);
  EXPECT_EQ(first, second);
}

// Degradation steps surface in explain_analyze() and the governor gauges in
// the Prometheus exposition.
TEST_F(GovernorTest, DegradationIsVisibleInExplainAnalyzeAndMetrics) {
  init_with();
  dense_matrix x = make_em_input();
  mutable_conf().mem_budget_bytes = 40000;

  const std::string analysis = (x * 4.0 + 2.0).explain_analyze();
  EXPECT_NE(analysis.find("\"degrade\": [\"depth:8->4\""), std::string::npos)
      << analysis.substr(0, 400);

  const std::string prom =
      obs::metrics_registry::global().to_prometheus();
  EXPECT_NE(prom.find("governor_reserved_bytes"), std::string::npos);
  EXPECT_NE(prom.find("governor_reserved_io"), std::string::npos);
  EXPECT_NE(prom.find("governor_degrade_steps"), std::string::npos);
  EXPECT_NE(prom.find("governor_active_passes"), std::string::npos);
}

// /healthz degraded/tripped accounting: the begin/end pairs drive the 503
// and its reason directly.
TEST_F(GovernorTest, HealthzReflectsDegradedAndTrippedAccounting) {
  init_with();
  auto& gov = exec::resource_governor::global();
  ASSERT_TRUE(gov.health().ok);

  gov.note_degraded_begin();
  std::string resp = obs::stats_server::http_response("/healthz");
  EXPECT_NE(resp.find("503"), std::string::npos);
  EXPECT_NE(resp.find("degraded"), std::string::npos);
  gov.note_degraded_end();

  gov.note_tripped_begin();
  resp = obs::stats_server::http_response("/healthz");
  EXPECT_NE(resp.find("503"), std::string::npos);
  EXPECT_NE(resp.find("tripped"), std::string::npos);
  gov.note_tripped_end();

  resp = obs::stats_server::http_response("/healthz");
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("\"ok\": true"), std::string::npos);
}

}  // namespace
}  // namespace flashr
