// Exhaustive GenOp element-function sweeps: every uop/bop/agg id is checked
// against a scalar host reference, for double and int64 elements, in memory
// and out of core. Each (op, type, storage) triple exercises a distinct
// kernel instantiation after the template-dispatch rework, so this is the
// suite that would catch a miscompiled or mis-dispatched kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/config.h"
#include "common/rng.h"
#include "core/dense_matrix.h"

namespace flashr {
namespace {

double host_uop(uop_id op, double x) {
  switch (op) {
    case uop_id::neg: return -x;
    case uop_id::abs_v: return std::abs(x);
    case uop_id::sqrt_v: return std::sqrt(x);
    case uop_id::exp_v: return std::exp(x);
    case uop_id::log_v: return std::log(x);
    case uop_id::log1p_v: return std::log1p(x);
    case uop_id::sigmoid: return 1.0 / (1.0 + std::exp(-x));
    case uop_id::square: return x * x;
    case uop_id::inv: return 1.0 / x;
    case uop_id::floor_v: return std::floor(x);
    case uop_id::ceil_v: return std::ceil(x);
    case uop_id::sign: return x > 0 ? 1 : (x < 0 ? -1 : 0);
    case uop_id::not_v: return x == 0 ? 1 : 0;
  }
  return x;
}

double host_bop(bop_id op, double x, double y, bool integer) {
  switch (op) {
    case bop_id::add: return x + y;
    case bop_id::sub: return x - y;
    case bop_id::mul: return x * y;
    case bop_id::div:
      return integer ? std::trunc(x / y) : x / y;
    case bop_id::mod:
      return integer ? static_cast<double>(static_cast<long long>(x) %
                                           static_cast<long long>(y))
                     : std::fmod(x, y);
    case bop_id::pow_v: {
      const double v = std::pow(x, y);
      return integer ? std::trunc(v) : v;
    }
    case bop_id::min_v: return std::min(x, y);
    case bop_id::max_v: return std::max(x, y);
    case bop_id::eq: return x == y ? 1 : 0;
    case bop_id::ne: return x != y ? 1 : 0;
    case bop_id::lt: return x < y ? 1 : 0;
    case bop_id::le: return x <= y ? 1 : 0;
    case bop_id::gt: return x > y ? 1 : 0;
    case bop_id::ge: return x >= y ? 1 : 0;
    case bop_id::and_v: return (x != 0 && y != 0) ? 1 : 0;
    case bop_id::or_v: return (x != 0 || y != 0) ? 1 : 0;
    case bop_id::sqdiff: return (x - y) * (x - y);
  }
  return x;
}

struct sweep_param {
  scalar_type type;
  storage st;
};

std::string sweep_name(const ::testing::TestParamInfo<sweep_param>& i) {
  return std::string(type_name(i.param.type)) +
         (i.param.st == storage::in_mem ? "_im" : "_em");
}

class OpSweepTest : public ::testing::TestWithParam<sweep_param> {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.io_part_rows = 64;
    o.pcache_bytes = 1024;
    o.small_nrow_threshold = 16;
    o.num_threads = 3;
    init(o);
  }

  static constexpr std::size_t kN = 333;  // several partitions + ragged tail
  static constexpr std::size_t kP = 3;

  bool integer() const { return !is_floating(GetParam().type); }

  /// Strictly positive data (safe for log/sqrt/div/mod); integers in [1, 9].
  smat host_data(std::uint64_t seed) const {
    smat h(kN, kP);
    rng64 rng(seed);
    for (std::size_t j = 0; j < kP; ++j)
      for (std::size_t i = 0; i < kN; ++i)
        h(i, j) = integer()
                      ? static_cast<double>(1 + rng.next_below(9))
                      : 0.1 + 3.0 * rng.next_uniform();
    return h;
  }

  dense_matrix place(const smat& h) const {
    return conv_store(dense_matrix::from_smat(h, GetParam().type),
                      GetParam().st);
  }

  double tol() const {
    if (integer()) return 0.0;
    return GetParam().type == scalar_type::f32 ? 2e-4 : 1e-9;
  }
  /// Relative tolerance for accumulating computations.
  double rel() const {
    return GetParam().type == scalar_type::f32 ? 1e-3 : 1e-7;
  }
};

TEST_P(OpSweepTest, EveryUnaryOpMatchesHost) {
  const smat h = host_data(1);
  const dense_matrix m = place(h);
  for (uop_id op :
       {uop_id::neg, uop_id::abs_v, uop_id::sqrt_v, uop_id::exp_v,
        uop_id::log_v, uop_id::log1p_v, uop_id::sigmoid, uop_id::square,
        uop_id::inv, uop_id::floor_v, uop_id::ceil_v, uop_id::sign,
        uop_id::not_v}) {
    smat got = sapply(m, op).to_smat();
    for (std::size_t j = 0; j < kP; ++j)
      for (std::size_t i = 0; i < kN; ++i) {
        double expect = host_uop(op, h(i, j));
        if (integer()) expect = std::trunc(expect);
        ASSERT_NEAR(got(i, j), expect, tol())
            << uop_name(op) << " at (" << i << "," << j << ")";
      }
  }
}

TEST_P(OpSweepTest, EveryBinaryOpMatchesHost) {
  const smat ha = host_data(2), hb = host_data(3);
  const dense_matrix a = place(ha), b = place(hb);
  for (bop_id op :
       {bop_id::add, bop_id::sub, bop_id::mul, bop_id::div, bop_id::mod,
        bop_id::pow_v, bop_id::min_v, bop_id::max_v, bop_id::eq, bop_id::ne,
        bop_id::lt, bop_id::le, bop_id::gt, bop_id::ge, bop_id::and_v,
        bop_id::or_v, bop_id::sqdiff}) {
    smat got = mapply2(a, b, op).to_smat();
    for (std::size_t j = 0; j < kP; ++j)
      for (std::size_t i = 0; i < kN; ++i) {
        const double expect = host_bop(op, ha(i, j), hb(i, j), integer());
        ASSERT_NEAR(got(i, j), expect, rel() * std::abs(expect) + tol())
            << bop_name(op) << " at (" << i << "," << j << ")";
      }
  }
}

TEST_P(OpSweepTest, EveryBinaryOpWithScalarMatchesHost) {
  const smat ha = host_data(4);
  const dense_matrix a = place(ha);
  const double c = integer() ? 3.0 : 1.7;
  for (bop_id op : {bop_id::add, bop_id::sub, bop_id::mul, bop_id::div,
                    bop_id::min_v, bop_id::max_v, bop_id::lt, bop_id::ge,
                    bop_id::sqdiff}) {
    smat right = mapply2(a, c, op).to_smat();
    smat left = mapply2(c, a, op).to_smat();
    for (std::size_t j = 0; j < kP; ++j)
      for (std::size_t i = 0; i < kN; ++i) {
        ASSERT_NEAR(right(i, j), host_bop(op, ha(i, j), c, integer()),
                    tol())
            << bop_name(op);
        ASSERT_NEAR(left(i, j), host_bop(op, c, ha(i, j), integer()), tol())
            << bop_name(op) << " (scalar left)";
      }
  }
}

TEST_P(OpSweepTest, EveryAggOpMatchesHost) {
  const smat h = host_data(5);
  const dense_matrix m = place(h);
  for (agg_id op : {agg_id::sum, agg_id::min_v, agg_id::max_v,
                    agg_id::count_nonzero, agg_id::any_v, agg_id::all_v}) {
    double expect;
    switch (op) {
      case agg_id::sum: {
        expect = 0;
        for (std::size_t i = 0; i < h.size(); ++i) expect += h.data()[i];
        break;
      }
      case agg_id::min_v:
        expect = *std::min_element(h.data(), h.data() + h.size());
        break;
      case agg_id::max_v:
        expect = *std::max_element(h.data(), h.data() + h.size());
        break;
      case agg_id::count_nonzero: {
        expect = 0;
        for (std::size_t i = 0; i < h.size(); ++i)
          expect += h.data()[i] != 0 ? 1 : 0;
        break;
      }
      case agg_id::any_v:
        expect = 1;  // data strictly positive
        break;
      default:
        expect = 1;  // all_v on strictly positive data
        break;
    }
    EXPECT_NEAR(agg(m, op).scalar(), expect, rel() * std::abs(expect) + tol())
        << agg_name(op);
  }
}

TEST_P(OpSweepTest, AggRowAndColForEveryOp) {
  const smat h = host_data(6);
  const dense_matrix m = place(h);
  for (agg_id op : {agg_id::sum, agg_id::min_v, agg_id::max_v,
                    agg_id::count_nonzero}) {
    smat rows = agg_row(m, op).to_smat();
    smat cols = agg_col(m, op).to_smat();
    for (std::size_t i = 0; i < kN; ++i) {
      double e = op == agg_id::sum || op == agg_id::count_nonzero
                     ? 0.0
                     : h(i, 0);
      for (std::size_t j = 0; j < kP; ++j) {
        switch (op) {
          case agg_id::sum: e += h(i, j); break;
          case agg_id::count_nonzero: e += h(i, j) != 0; break;
          case agg_id::min_v: e = std::min(e, h(i, j)); break;
          default: e = std::max(e, h(i, j)); break;
        }
      }
      ASSERT_NEAR(rows(i, 0), e, rel() * std::abs(e) + 1e-8 + tol())
          << agg_name(op) << " row " << i;
    }
    for (std::size_t j = 0; j < kP; ++j) {
      double e = op == agg_id::sum || op == agg_id::count_nonzero
                     ? 0.0
                     : h(0, j);
      for (std::size_t i = 0; i < kN; ++i) {
        switch (op) {
          case agg_id::sum: e += h(i, j); break;
          case agg_id::count_nonzero: e += h(i, j) != 0; break;
          case agg_id::min_v: e = std::min(e, h(i, j)); break;
          default: e = std::max(e, h(i, j)); break;
        }
      }
      ASSERT_NEAR(cols(0, j), e, rel() * std::abs(e) + 1e-7 + tol())
          << agg_name(op) << " col " << j;
    }
  }
}

TEST_P(OpSweepTest, GroupbyMinMaxAndProd) {
  const smat h = host_data(7);
  const dense_matrix m = place(h);
  smat labh(kN, 1);
  for (std::size_t i = 0; i < kN; ++i)
    labh(i, 0) = static_cast<double>(i % 4);
  dense_matrix labels =
      conv_store(dense_matrix::from_smat(labh, scalar_type::i64),
                 GetParam().st);
  for (agg_id op : {agg_id::min_v, agg_id::max_v}) {
    smat got = groupby_row(m, labels, 4, op).to_smat();
    for (std::size_t g = 0; g < 4; ++g)
      for (std::size_t j = 0; j < kP; ++j) {
        double e = op == agg_id::min_v ? 1e300 : -1e300;
        for (std::size_t i = g; i < kN; i += 4)
          e = op == agg_id::min_v ? std::min(e, h(i, j))
                                  : std::max(e, h(i, j));
        ASSERT_NEAR(got(g, j), e, tol()) << agg_name(op);
      }
  }
}

TEST_P(OpSweepTest, CumOpsForSeveralFunctions) {
  const smat h = host_data(8);
  const dense_matrix m = place(h);
  for (bop_id op : {bop_id::add, bop_id::mul, bop_id::min_v, bop_id::max_v}) {
    if (op == bop_id::mul && !integer()) continue;  // products overflow fp ulp
    if (op == bop_id::mul && integer()) continue;   // and integers wrap
    smat got = cum_col(m, op).to_smat();
    for (std::size_t j = 0; j < kP; ++j) {
      double run = h(0, j);
      ASSERT_NEAR(got(0, j), run, tol());
      for (std::size_t i = 1; i < kN; ++i) {
        run = host_bop(op, run, h(i, j), integer());
        ASSERT_NEAR(got(i, j), run, rel() * std::abs(run) + tol())
            << bop_name(op) << " at " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TypesAndStorage, OpSweepTest,
    ::testing::Values(sweep_param{scalar_type::f64, storage::in_mem},
                      sweep_param{scalar_type::f64, storage::ext_mem},
                      sweep_param{scalar_type::i64, storage::in_mem},
                      sweep_param{scalar_type::i64, storage::ext_mem},
                      sweep_param{scalar_type::f32, storage::in_mem},
                      sweep_param{scalar_type::i32, storage::in_mem}),
    sweep_name);

}  // namespace
}  // namespace flashr
