// Tests for data import/export, matrix persistence, and the reshaping /
// value-space operations (rbind, unique, table, replace_cols, head_rows).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "common/config.h"
#include "core/dense_matrix.h"
#include "core/reshape.h"
#include "matrix/import.h"

namespace flashr {
namespace {

class ImportTest : public ::testing::TestWithParam<storage> {
 protected:
  void SetUp() override {
    options o;
    o.em_dir = "/tmp/flashr_test_em";
    o.io_part_rows = 64;
    o.small_nrow_threshold = 16;
    init(o);
  }
  storage st() const { return GetParam(); }
};

/// Temp-file path unique per process: the im/em variants of these tests
/// may run concurrently under parallel ctest and share em_dir.
std::string tmp_path(const std::string& base) {
  return "/tmp/flashr_test_em/" + std::to_string(::getpid()) + "_" + base;
}

TEST_P(ImportTest, CsvRoundTrip) {
  const std::string path = tmp_path("roundtrip.csv");
  smat h(300, 4);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < 300; ++i)
      h(i, j) = static_cast<double>(i) * 0.5 - static_cast<double>(j);
  save_dense_text(dense_matrix::from_smat(h), path);

  load_options opts;
  opts.st = st();
  dense_matrix m = load_dense(path, opts);
  EXPECT_EQ(m.nrow(), 300u);
  EXPECT_EQ(m.ncol(), 4u);
  EXPECT_LT(m.to_smat().max_abs_diff(h), 1e-9);
  std::remove(path.c_str());
}

TEST_P(ImportTest, CsvWithHeaderAndTabs) {
  const std::string path = tmp_path("header.tsv");
  {
    std::ofstream f(path);
    f << "a\tb\tc\n1\t2\t3\n4.5\t-6\t7e2\n";
  }
  load_options opts;
  opts.header = true;
  opts.delimiter = '\t';
  opts.st = st();
  dense_matrix m = load_dense(path, opts);
  EXPECT_EQ(m.nrow(), 2u);
  EXPECT_EQ(m.ncol(), 3u);
  smat h = m.to_smat();
  EXPECT_EQ(h(0, 0), 1.0);
  EXPECT_EQ(h(1, 1), -6.0);
  EXPECT_EQ(h(1, 2), 700.0);
  std::remove(path.c_str());
}

TEST_P(ImportTest, LoadDenseRejectsMissingAndGarbage) {
  EXPECT_THROW(load_dense("/tmp/flashr_no_such_file.csv"), io_error);
  const std::string path = tmp_path("garbage.csv");
  {
    std::ofstream f(path);
    f << "1,2\nfoo,bar\n";
  }
  EXPECT_THROW(load_dense(path), error);
  std::remove(path.c_str());
}

TEST_P(ImportTest, BinaryPersistenceRoundTrip) {
  dense_matrix m = dense_matrix::rnorm(500, 3, 1, 2, 9);
  dense_matrix placed = conv_store(m, st());
  // Name is unique per process: the im/em variants of this test may run
  // concurrently under parallel ctest and share em_dir.
  const std::string name = "persist_test" + std::to_string(::getpid());
  save_matrix(placed, conf().em_dir, name);
  dense_matrix back = load_matrix(conf().em_dir, name, st());
  EXPECT_EQ(back.nrow(), 500u);
  EXPECT_EQ(back.type(), scalar_type::f64);
  EXPECT_EQ(back.to_smat().max_abs_diff(placed.to_smat()), 0.0);
}

TEST_P(ImportTest, BinaryPersistencePreservesIntegers) {
  smat h(100, 2);
  for (std::size_t i = 0; i < 100; ++i) {
    h(i, 0) = static_cast<double>(i * 7);
    h(i, 1) = static_cast<double>(i) - 50;
  }
  dense_matrix m =
      conv_store(dense_matrix::from_smat(h, scalar_type::i64), st());
  const std::string name = "persist_ints" + std::to_string(::getpid());
  save_matrix(m, conf().em_dir, name);
  dense_matrix back = load_matrix(conf().em_dir, name, st());
  EXPECT_EQ(back.type(), scalar_type::i64);
  EXPECT_EQ(back.to_smat().max_abs_diff(h), 0.0);
}

TEST_P(ImportTest, RbindStacksRows) {
  smat a(150, 3), b(77, 3);
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t i = 0; i < 150; ++i) a(i, j) = static_cast<double>(i + j);
    for (std::size_t i = 0; i < 77; ++i) b(i, j) = -static_cast<double>(i) - 1;
  }
  dense_matrix stacked =
      rbind({conv_store(dense_matrix::from_smat(a), st()),
             conv_store(dense_matrix::from_smat(b), st())},
            st());
  EXPECT_EQ(stacked.nrow(), 227u);
  smat h = stacked.to_smat();
  EXPECT_EQ(h(0, 0), 0.0);
  EXPECT_EQ(h(149, 2), 151.0);
  EXPECT_EQ(h(150, 0), -1.0);
  EXPECT_EQ(h(226, 1), -77.0);
}

TEST_P(ImportTest, RbindManyPiecesSpansPartitions) {
  std::vector<dense_matrix> pieces;
  std::size_t total = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    const std::size_t rows = 37 + i * 11;  // deliberately partition-unaligned
    pieces.push_back(
        conv_store(dense_matrix::constant(rows, 2, static_cast<double>(i)),
                   st()));
    total += rows;
  }
  dense_matrix stacked = rbind(pieces, st());
  EXPECT_EQ(stacked.nrow(), total);
  smat h = stacked.to_smat();
  std::size_t at = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    const std::size_t rows = 37 + i * 11;
    EXPECT_EQ(h(at, 0), static_cast<double>(i));
    EXPECT_EQ(h(at + rows - 1, 1), static_cast<double>(i));
    at += rows;
  }
}

TEST_P(ImportTest, UniqueAndTable) {
  smat h(200, 1);
  for (std::size_t i = 0; i < 200; ++i) h(i, 0) = static_cast<double>(i % 5);
  dense_matrix m = conv_store(dense_matrix::from_smat(h), st());
  auto uniq = unique_values(m);
  ASSERT_EQ(uniq.size(), 5u);
  for (std::size_t v = 0; v < 5; ++v) EXPECT_EQ(uniq[v], static_cast<double>(v));
  auto tab = table_values(m);
  for (std::size_t v = 0; v < 5; ++v)
    EXPECT_EQ(tab[static_cast<double>(v)], 40u);
}

TEST_P(ImportTest, ReplaceColsIsLazyView) {
  dense_matrix a = conv_store(dense_matrix::constant(300, 4, 1.0), st());
  dense_matrix b = conv_store(dense_matrix::constant(300, 2, 9.0), st());
  dense_matrix r = replace_cols(a, {1, 3}, b);
  smat h = r.to_smat();
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_EQ(h(i, 0), 1.0);
    EXPECT_EQ(h(i, 1), 9.0);
    EXPECT_EQ(h(i, 2), 1.0);
    EXPECT_EQ(h(i, 3), 9.0);
  }
}

TEST_P(ImportTest, HeadRows) {
  dense_matrix m = conv_store(dense_matrix::seq(500), st());
  dense_matrix h = head_rows(m, 130, st());
  EXPECT_EQ(h.nrow(), 130u);
  smat hh = h.to_smat();
  EXPECT_EQ(hh(0, 0), 0.0);
  EXPECT_EQ(hh(129, 0), 129.0);
}

INSTANTIATE_TEST_SUITE_P(Storages, ImportTest,
                         ::testing::Values(storage::in_mem, storage::ext_mem),
                         [](const ::testing::TestParamInfo<storage>& i) {
                           return i.param == storage::in_mem ? "im" : "em";
                         });

}  // namespace
}  // namespace flashr
