// Tests for the BLAS substrate: GEMM variants against naive references,
// Cholesky/solves/eigensolver against known identities, over random inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/blas.h"
#include "blas/smat.h"
#include "common/rng.h"

namespace flashr {
namespace {

smat random_mat(std::size_t m, std::size_t n, std::uint64_t seed) {
  smat a(m, n);
  rng64 rng(seed);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < m; ++i) a(i, j) = rng.next_normal();
  return a;
}

smat naive_mm(const smat& a, const smat& b) {
  smat c(a.nrow(), b.ncol());
  for (std::size_t i = 0; i < a.nrow(); ++i)
    for (std::size_t j = 0; j < b.ncol(); ++j) {
      double s = 0;
      for (std::size_t k = 0; k < a.ncol(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  return c;
}

struct gemm_case {
  std::size_t m, n, k;
};

class GemmTest : public ::testing::TestWithParam<gemm_case> {};

TEST_P(GemmTest, NnMatchesNaive) {
  const auto [m, n, k] = GetParam();
  smat a = random_mat(m, k, 1), b = random_mat(k, n, 2);
  smat c = a.mm(b);
  EXPECT_LT(c.max_abs_diff(naive_mm(a, b)), 1e-9 * static_cast<double>(k + 1));
}

TEST_P(GemmTest, TnMatchesNaive) {
  const auto [m, n, k] = GetParam();
  smat a = random_mat(k, m, 3), b = random_mat(k, n, 4);
  smat c = a.crossprod(b);
  EXPECT_LT(c.max_abs_diff(naive_mm(a.t(), b)),
            1e-9 * static_cast<double>(k + 1));
}

TEST_P(GemmTest, AccumulatesWithBeta) {
  const auto [m, n, k] = GetParam();
  smat a = random_mat(m, k, 5), b = random_mat(k, n, 6);
  smat c = random_mat(m, n, 7);
  smat expect = c + naive_mm(a, b) * 2.0;
  blas::gemm_nn(m, n, k, 2.0, a.data(), m, b.data(), k, 1.0, c.data(), m);
  EXPECT_LT(c.max_abs_diff(expect), 1e-9 * static_cast<double>(k + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmTest,
    ::testing::Values(gemm_case{1, 1, 1}, gemm_case{3, 5, 7},
                      gemm_case{16, 16, 16}, gemm_case{33, 2, 65},
                      gemm_case{257, 4, 31}, gemm_case{64, 64, 300},
                      gemm_case{5, 260, 9}, gemm_case{300, 3, 300}));

TEST(Gemv, MatchesNaive) {
  smat a = random_mat(37, 11, 8);
  std::vector<double> x(11), y(37, 0.5), expect(37);
  rng64 rng(9);
  for (auto& v : x) v = rng.next_normal();
  for (std::size_t i = 0; i < 37; ++i) {
    double s = 0.25 * y[i];
    for (std::size_t j = 0; j < 11; ++j) s += 2.0 * a(i, j) * x[j];
    expect[i] = s;
  }
  blas::gemv(37, 11, 2.0, a.data(), 37, x.data(), 0.25, y.data());
  for (std::size_t i = 0; i < 37; ++i) EXPECT_NEAR(y[i], expect[i], 1e-10);
}

smat random_spd(std::size_t n, std::uint64_t seed) {
  smat a = random_mat(n + 3, n, seed);
  smat s = a.crossprod(a);  // A^T A is SPD (full rank w.h.p.)
  for (std::size_t i = 0; i < n; ++i) s(i, i) += 0.5;
  return s;
}

class SpdTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpdTest, CholeskyReconstructs) {
  const std::size_t n = GetParam();
  smat s = random_spd(n, 10);
  smat l = s;
  ASSERT_TRUE(blas::cholesky(n, l.data(), n));
  smat recon = l.mm(l.t());
  EXPECT_LT(recon.max_abs_diff(s), 1e-8 * static_cast<double>(n + 1));
}

TEST_P(SpdTest, SpdInverse) {
  const std::size_t n = GetParam();
  smat s = random_spd(n, 11);
  smat inv = s;
  ASSERT_TRUE(blas::spd_inverse(n, inv.data(), n));
  smat prod = s.mm(inv);
  EXPECT_LT(prod.max_abs_diff(smat::identity(n)),
            1e-6 * static_cast<double>(n + 1));
}

TEST_P(SpdTest, JacobiEigenReconstructs) {
  const std::size_t n = GetParam();
  smat s = random_spd(n, 12);
  smat work = s;
  std::vector<double> w(n);
  smat v(n, n);
  blas::jacobi_eigen(n, work.data(), n, w.data(), v.data(), n);
  // Eigenvalues descending.
  for (std::size_t i = 1; i < n; ++i) EXPECT_LE(w[i], w[i - 1] + 1e-12);
  // V diag(w) V^T == S.
  smat vd = v;
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) vd(i, j) *= w[j];
  smat recon = vd.mm(v.t());
  EXPECT_LT(recon.max_abs_diff(s), 1e-7 * static_cast<double>(n + 1));
  // V orthonormal.
  smat vtv = v.crossprod(v);
  EXPECT_LT(vtv.max_abs_diff(smat::identity(n)),
            1e-8 * static_cast<double>(n + 1));
}

TEST_P(SpdTest, LuSolve) {
  const std::size_t n = GetParam();
  smat a = random_mat(n, n, 13);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 3.0;
  smat x_true = random_mat(n, 2, 14);
  smat b = a.mm(x_true);
  smat a_work = a;
  ASSERT_TRUE(blas::lu_solve(n, 2, a_work.data(), n, b.data(), n));
  EXPECT_LT(b.max_abs_diff(x_true), 1e-7 * static_cast<double>(n + 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpdTest,
                         ::testing::Values(1, 2, 3, 8, 17, 40, 96));

TEST(Cholesky, RejectsIndefinite) {
  smat s = smat::from_rows(2, 2, {1.0, 2.0, 2.0, 1.0});  // eigenvalues 3, -1
  EXPECT_FALSE(blas::cholesky(2, s.data(), 2));
}

TEST(LuSolve, RejectsSingular) {
  smat s = smat::from_rows(2, 2, {1.0, 2.0, 2.0, 4.0});
  smat b(2, 1, 1.0);
  EXPECT_FALSE(blas::lu_solve(2, 1, s.data(), 2, b.data(), 2));
}

TEST(TriangularSolves, ForwardBackward) {
  const std::size_t n = 6;
  smat s = random_spd(n, 15);
  smat l = s;
  ASSERT_TRUE(blas::cholesky(n, l.data(), n));
  std::vector<double> b(n);
  rng64 rng(16);
  for (auto& v : b) v = rng.next_normal();
  std::vector<double> x = b;
  blas::forward_subst(n, l.data(), n, x.data());
  blas::backward_subst_t(n, l.data(), n, x.data());
  // L L^T x == b means S x == b.
  for (std::size_t i = 0; i < n; ++i) {
    double got = 0;
    for (std::size_t j = 0; j < n; ++j) got += s(i, j) * x[j];
    EXPECT_NEAR(got, b[i], 1e-8);
  }
}

TEST(CholeskyLogdet, MatchesEigenSum) {
  const std::size_t n = 9;
  smat s = random_spd(n, 17);
  smat l = s;
  ASSERT_TRUE(blas::cholesky(n, l.data(), n));
  const double ld = blas::cholesky_logdet(n, l.data(), n);
  smat work = s;
  std::vector<double> w(n);
  blas::jacobi_eigen(n, work.data(), n, w.data(), nullptr, 0);
  double expect = 0;
  for (double v : w) expect += std::log(v);
  EXPECT_NEAR(ld, expect, 1e-8);
}

TEST(Smat, BasicOps) {
  smat a = smat::from_rows(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(a(0, 1), 2.0);
  EXPECT_EQ(a(1, 2), 6.0);
  smat at = a.t();
  EXPECT_EQ(at.nrow(), 3u);
  EXPECT_EQ(at(1, 0), 2.0);
  smat sum = a + a;
  EXPECT_EQ(sum(1, 1), 10.0);
  smat diff = sum - a;
  EXPECT_LT(diff.max_abs_diff(a), 1e-15);
  smat r = a.row(1);
  EXPECT_EQ(r(0, 0), 4.0);
  smat c = a.col(2);
  EXPECT_EQ(c(1, 0), 6.0);
}

}  // namespace
}  // namespace flashr
